package rules

import (
	"testing"

	"goopc/internal/geom"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

func fastSim(t *testing.T) (*optics.Simulator, float64) {
	t.Helper()
	s := optics.Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	sim, err := optics.New(s)
	if err != nil {
		t.Fatal(err)
	}
	th, err := resist.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	return sim, th
}

func TestBiasTableLookup(t *testing.T) {
	tab := BiasTable{
		Entries: []BiasEntry{{Space: 300, Bias: 2}, {Space: 600, Bias: 8}},
		IsoBias: 15,
	}
	cases := []struct {
		space geom.Coord
		want  geom.Coord
	}{
		{200, 2}, {300, 2}, {301, 8}, {600, 8}, {601, 15}, {5000, 15},
	}
	for _, c := range cases {
		if got := tab.Lookup(c.space); got != c.want {
			t.Errorf("Lookup(%d) = %d, want %d", c.space, got, c.want)
		}
	}
	// Empty table: always iso.
	if got := (BiasTable{IsoBias: 7}).Lookup(100); got != 7 {
		t.Errorf("empty table Lookup = %d", got)
	}
}

func TestBuildBiasTable(t *testing.T) {
	sim, th := fastSim(t)
	tab, err := BuildBiasTable(sim, th, 180, []geom.Coord{250, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Entries) != 2 {
		t.Fatalf("entries = %d", len(tab.Entries))
	}
	// Entries sorted by space.
	if tab.Entries[0].Space != 250 || tab.Entries[1].Space != 500 {
		t.Errorf("entry order: %+v", tab.Entries)
	}
	// Biases and iso bias must be within mask-rule-plausible range.
	for _, e := range tab.Entries {
		if e.Bias < -60 || e.Bias > 60 {
			t.Errorf("space %d bias %d out of plausible range", e.Space, e.Bias)
		}
	}
	if tab.IsoBias < -60 || tab.IsoBias > 60 {
		t.Errorf("iso bias %d out of range", tab.IsoBias)
	}
	// The table must actually size the line: verify one entry.
	w := 180 + 2*tab.IsoBias
	mask := []geom.Polygon{geom.R(-w/2, -4000, w/2, 4000).Polygon()}
	im, err := sim.Aerial(mask, geom.R(-400, -200, 400, 200))
	if err != nil {
		t.Fatal(err)
	}
	cd, err := resist.MeasureCD(im, th, 0, 0, true, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cd < 176 || cd > 184 {
		t.Errorf("iso bias %d prints CD %.1f, want 180 +- 4", tab.IsoBias, cd)
	}
	// Bad parameters.
	if _, err := BuildBiasTable(sim, th, 0, []geom.Coord{250}); err == nil {
		t.Error("zero cd should fail")
	}
}

func TestApplyBiasOnly(t *testing.T) {
	r := DefaultRecipe()
	r.HammerExt, r.HammerWing, r.SerifSize, r.SRAFWidth = 0, 0, 0, 0
	r.Bias = BiasTable{IsoBias: 10}
	target := []geom.Polygon{geom.R(0, 0, 180, 3000).Polygon()}
	res := r.Apply(target)
	if len(res.Corrected) != 1 {
		t.Fatalf("corrected = %d polygons", len(res.Corrected))
	}
	// Uniform +10 bias widens by 20 in both axes.
	bb := res.Corrected[0].BBox()
	if bb.W() != 200 || bb.H() != 3020 {
		t.Errorf("biased bbox = %v", bb)
	}
	if len(res.SRAFs) != 0 {
		t.Error("SRAFs disabled but produced")
	}
}

func TestApplyHammerhead(t *testing.T) {
	r := DefaultRecipe()
	r.SerifSize, r.SRAFWidth = 0, 0
	r.Bias = BiasTable{} // zero bias
	// A 180-wide vertical line: both 180 nm end edges are line ends.
	target := []geom.Polygon{geom.R(0, 0, 180, 3000).Polygon()}
	res := r.Apply(target)
	merged := geom.RegionFromPolygons(res.Corrected...)
	// The hammerhead extends past the drawn tip.
	if !merged.Contains(geom.Pt(90, 3010)) {
		t.Error("no extension past the top line end")
	}
	if !merged.Contains(geom.Pt(90, -10)) {
		t.Error("no extension past the bottom line end")
	}
	// And widens beyond the line edge near the tip.
	if !merged.Contains(geom.Pt(-10, 2990)) {
		t.Error("no wing at the tip")
	}
	// But not at mid-line.
	if merged.Contains(geom.Pt(-10, 1500)) {
		t.Error("wing leaked to mid-line")
	}
}

func TestApplySerifs(t *testing.T) {
	r := DefaultRecipe()
	r.HammerExt, r.HammerWing, r.SRAFWidth = 0, 0, 0
	r.SerifSize = 40
	r.Spec = geom.FragmentSpec{MaxLen: 400, CornerLen: 80, LineEndMax: 100}
	// An L: has 5 convex + 1 concave corner (all edges > LineEndMax).
	target := []geom.Polygon{{
		geom.Pt(0, 0), geom.Pt(2000, 0), geom.Pt(2000, 400),
		geom.Pt(400, 400), geom.Pt(400, 2000), geom.Pt(0, 2000),
	}}
	res := r.Apply(target)
	merged := geom.RegionFromPolygons(res.Corrected...)
	// Convex corner at (2000,0): serif sticks out.
	if !merged.Contains(geom.Pt(2010, 10)) {
		t.Error("no serif at convex corner")
	}
	// Concave corner at (400,400): notch cut in.
	if merged.Contains(geom.Pt(395, 395)) {
		t.Error("no anti-serif at concave corner")
	}
	// Area grows from convex serifs net of the single concave notch.
	origArea := geom.RegionFromPolygons(target...).Area()
	if merged.Area() <= origArea {
		t.Error("serifed area should exceed original")
	}
}

func TestApplyScatteringBars(t *testing.T) {
	r := DefaultRecipe()
	r.HammerExt, r.HammerWing, r.SerifSize = 0, 0, 0
	r.Bias = BiasTable{}
	// One isolated long line: bars appear on both open sides.
	target := []geom.Polygon{geom.R(0, 0, 180, 6000).Polygon()}
	res := r.Apply(target)
	if len(res.SRAFs) < 2 {
		t.Fatalf("SRAFs = %d, want bars both sides", len(res.SRAFs))
	}
	// Bars are at the recipe distance and width, and sub-resolution.
	for _, b := range res.SRAFs {
		bb := b.BBox()
		w := bb.W()
		if bb.H() < w {
			w = bb.H()
		}
		if w != r.SRAFWidth {
			t.Errorf("bar width = %d, want %d", w, r.SRAFWidth)
		}
	}
	barRegion := geom.RegionFromPolygons(res.SRAFs...)
	// Bars keep their standoff from the line.
	tooClose := geom.RegionFromPolygons(target...).Grow(r.SRAFSpace - 10)
	if !barRegion.Intersect(tooClose).Empty() {
		t.Error("bar violates standoff")
	}
	// Dense pair: inner space below SRAFMinOpen gets no bar between.
	target2 := []geom.Polygon{
		geom.R(0, 0, 180, 6000).Polygon(),
		geom.R(600, 0, 780, 6000).Polygon(), // 420 space < SRAFMinOpen
	}
	res2 := r.Apply(target2)
	between := geom.R(180, 0, 600, 6000)
	for _, b := range res2.SRAFs {
		if b.BBox().Overlaps(between) {
			t.Error("bar placed in dense space")
		}
	}
}

func TestRuleOPCImprovesIsoCD(t *testing.T) {
	// End-to-end: rule-biased isolated line prints closer to target than
	// uncorrected at dense calibration.
	sim, th := fastSim(t)
	tab, err := BuildBiasTable(sim, th, 180, []geom.Coord{320})
	if err != nil {
		t.Fatal(err)
	}
	r := DefaultRecipe()
	r.HammerExt, r.HammerWing, r.SerifSize, r.SRAFWidth = 0, 0, 0, 0
	r.Bias = tab
	target := []geom.Polygon{geom.R(-90, -4000, 90, 4000).Polygon()}
	res := r.Apply(target)
	window := geom.R(-400, -200, 400, 200)
	imU, err := sim.Aerial(target, window)
	if err != nil {
		t.Fatal(err)
	}
	imC, err := sim.Aerial(res.Corrected, window)
	if err != nil {
		t.Fatal(err)
	}
	cdU, err := resist.MeasureCD(imU, th, 0, 0, true, 400)
	if err != nil {
		t.Fatal(err)
	}
	cdC, err := resist.MeasureCD(imC, th, 0, 0, true, 400)
	if err != nil {
		t.Fatal(err)
	}
	errU := abs(cdU - 180)
	errC := abs(cdC - 180)
	if errC >= errU {
		t.Errorf("rule OPC did not improve: uncorrected err=%.1f corrected err=%.1f", errU, errC)
	}
	if errC > 6 {
		t.Errorf("corrected iso CD error = %.1f nm, want <= 6", errC)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestHammerheadReducesPullback(t *testing.T) {
	sim, th := fastSim(t)
	// Line with a tip at y=0.
	target := []geom.Polygon{geom.R(-90, -4000, 90, 0).Polygon()}
	r := DefaultRecipe()
	r.SerifSize, r.SRAFWidth = 0, 0
	r.Bias = BiasTable{}
	res := r.Apply(target)
	window := geom.R(-400, -900, 400, 300)
	pullback := func(mask []geom.Polygon) float64 {
		im, err := sim.Aerial(mask, window)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := im.FindCrossing(0, -800, 0, 1, th, 1200)
		if !ok {
			t.Fatal("no tip crossing")
		}
		return 800 - d // positive = printed tip short of drawn
	}
	pbU := pullback(target)
	pbC := pullback(res.Corrected)
	if pbC >= pbU {
		t.Errorf("hammerhead did not reduce pullback: %.1f -> %.1f", pbU, pbC)
	}
}
