// Package rules implements 2001-era rule-based OPC: selective line
// biasing from a pitch-keyed bias table, hammerhead line-end treatment,
// corner serifs, and scattering-bar (sub-resolution assist feature)
// insertion. Rule-based correction is pure geometry — fast, no imaging
// in the apply path — with the bias table itself generated once per
// process by simulation, exactly how production rule decks were built.
package rules

import (
	"context"
	"fmt"
	"sort"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// BiasEntry maps a proximity environment (space to the nearest facing
// feature, up to and including Space) to an edge bias.
type BiasEntry struct {
	// Space is the upper bound of the neighbor-distance bin.
	Space geom.Coord
	// Bias is the per-edge displacement (positive widens the feature).
	Bias geom.Coord
}

// BiasTable is the ordered rule deck: entries sorted by Space; lookups
// take the first entry whose Space bound covers the measured distance,
// falling back to IsoBias beyond the last bound.
type BiasTable struct {
	Entries []BiasEntry
	IsoBias geom.Coord
}

// Lookup returns the bias for a measured neighbor distance.
func (t BiasTable) Lookup(space geom.Coord) geom.Coord {
	for _, e := range t.Entries {
		if space <= e.Space {
			return e.Bias
		}
	}
	return t.IsoBias
}

// BuildBiasTable generates the rule deck by simulation, the way process
// groups did it: for each space bin, place a line array at that space,
// find by bisection the symmetric edge bias that makes the printed CD
// equal to drawn, and record it. cd is the drawn line width; spaces are
// the environment bins; threshold is the calibrated resist threshold.
func BuildBiasTable(sim *optics.Simulator, threshold float64, cd geom.Coord, spaces []geom.Coord) (BiasTable, error) {
	if cd <= 0 || len(spaces) == 0 {
		return BiasTable{}, fmt.Errorf("rules: bad bias table parameters")
	}
	sorted := append([]geom.Coord{}, spaces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var table BiasTable
	for _, space := range sorted {
		bias, err := solveBias(sim, threshold, cd, space, false)
		if err != nil {
			return BiasTable{}, fmt.Errorf("rules: space %d: %w", space, err)
		}
		table.Entries = append(table.Entries, BiasEntry{Space: space, Bias: bias})
	}
	isoBias, err := solveBias(sim, threshold, cd, 0, true)
	if err != nil {
		return BiasTable{}, fmt.Errorf("rules: iso: %w", err)
	}
	table.IsoBias = isoBias
	return table, nil
}

// solveBias finds the symmetric bias that prints a line of drawn cd at
// size in the given environment (space between lines, or isolated).
// Measurement failures are disambiguated to keep the bisection
// monotone: a bright center means the line vanished (CD 0); a dark
// center with no crossing means neighbors merged (CD effectively the
// full pitch).
func solveBias(sim *optics.Simulator, threshold float64, cd, space geom.Coord, iso bool) (geom.Coord, error) {
	pitch := cd + space
	measure := func(bias geom.Coord) float64 {
		w := cd + 2*bias
		if w < 4 {
			return 0 // no chrome left at all
		}
		var mask []geom.Polygon
		if iso {
			mask = []geom.Polygon{geom.R(-w/2, -4000, w/2, 4000).Polygon()}
		} else {
			for i := -5; i <= 5; i++ {
				x := geom.Coord(i) * pitch
				mask = append(mask, geom.R(x-w/2, -4000, x+w/2, 4000).Polygon())
			}
		}
		window := geom.R(-pitch-200, -200, pitch+200, 200)
		im, err := sim.Aerial(mask, window)
		if err != nil {
			return 0
		}
		c, err := resist.MeasureCD(im, threshold, 0, 0, true, float64(pitch+400))
		if err != nil {
			if im.At(0, 0) < threshold {
				return float64(2 * (pitch + 400)) // merged: effectively huge
			}
			return 0 // vanished
		}
		return c
	}
	target := float64(cd)
	// Bracket the bias physically: never thin the line below a quarter
	// CD; allow up to +80 but never close a dense space below 40 nm.
	lo := -cd / 4
	hi := geom.Coord(80)
	if !iso && (space-40)/2 < hi {
		hi = (space - 40) / 2
	}
	if hi <= lo {
		return 0, fmt.Errorf("rules: space %d too tight to bias a %d line", space, cd)
	}
	cdLo := measure(lo)
	cdHi := measure(hi)
	if !(cdLo <= target && target <= cdHi) {
		return 0, fmt.Errorf("rules: target CD %d outside bracket [%.1f, %.1f] for space %d",
			cd, cdLo, cdHi, space)
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if measure(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// Recipe is the full rule-based OPC recipe.
type Recipe struct {
	Bias BiasTable
	// Hammer controls line-end treatment: extension past the drawn end
	// and the extra half-width of the head on each side. Zero disables.
	HammerExt, HammerWing geom.Coord
	// SerifSize places squares of this size on convex corners (and
	// notches concave corners). Zero disables.
	SerifSize geom.Coord
	// SRAF controls scattering bars: a bar of width SRAFWidth at
	// distance SRAFSpace from edges whose neighbor distance exceeds
	// SRAFMinOpen. Zero width disables.
	SRAFWidth, SRAFSpace, SRAFMinOpen geom.Coord
	// MRC clamps biases.
	MRC opc.MRC
	// MaxProbe bounds the neighbor-distance search.
	MaxProbe geom.Coord
	// Spec controls fragmentation granularity for per-edge biasing.
	Spec geom.FragmentSpec
}

// DefaultRecipe returns a recipe with typical 248 nm parameters; the
// bias table must still be filled (BuildBiasTable) or left empty for
// no-bias operation.
func DefaultRecipe() Recipe {
	return Recipe{
		HammerExt:   25,
		HammerWing:  30,
		SerifSize:   40,
		SRAFWidth:   60,
		SRAFSpace:   280,
		SRAFMinOpen: 1000,
		MRC:         opc.DefaultMRC(),
		MaxProbe:    2000,
		Spec:        geom.DefaultFragmentSpec(),
	}
}

// Apply corrects the drawn polygons per the recipe. Pure geometry: the
// simulator is not consulted.
func (r Recipe) Apply(target []geom.Polygon) opc.Result {
	res, _ := r.ApplyCtx(context.Background(), target)
	return res
}

// ApplyCtx is Apply bounded by a context: cancellation aborts between
// polygons with the context error. Rule-based correction is cheap, but
// a full-chip layer is millions of polygons — the resilience layer
// needs even the fallback path to honor run deadlines.
func (r Recipe) ApplyCtx(ctx context.Context, target []geom.Polygon) (opc.Result, error) {
	var out opc.Result
	for pi, p := range target {
		if err := ctx.Err(); err != nil {
			return opc.Result{}, fmt.Errorf("rules: polygon %d: %w", pi, err)
		}
		frags := geom.FragmentPolygon(p, pi, r.Spec)
		// Per-fragment bias from the neighbor environment.
		for i := range frags {
			space := opc.NeighborDistance(frags[i], target, pi, r.MaxProbe)
			frags[i].Bias = r.MRC.Clamp(r.Bias.Lookup(space))
		}
		corrected := geom.RebuildPolygon(frags)
		add := []geom.Polygon{corrected}
		var sub []geom.Polygon
		// Line-end hammerheads and corner serifs are applied at the
		// *drawn* geometry positions, displaced by the local bias.
		for _, f := range frags {
			switch f.Kind {
			case geom.LineEndFragment:
				if r.HammerExt > 0 || r.HammerWing > 0 {
					add = append(add, hammerhead(f, r))
				}
			case geom.ConvexCornerFragment:
				if r.SerifSize > 0 {
					if s, ok := cornerSerif(f, r.SerifSize, true); ok {
						add = append(add, s)
					}
				}
			case geom.ConcaveCornerFragment:
				if r.SerifSize > 0 {
					if s, ok := cornerSerif(f, r.SerifSize, false); ok {
						sub = append(sub, s)
					}
				}
			}
		}
		merged := geom.BooleanPolygons(add, sub, "sub").Polygons()
		out.Corrected = append(out.Corrected, merged...)
	}
	// Scattering bars for open edges, after correction so bars key off
	// drawn geometry but never merge with it.
	if r.SRAFWidth > 0 {
		bars := scatteringBars(target, r)
		out.SRAFs = append(out.SRAFs, bars...)
	}
	return out, nil
}

// hammerhead returns the head rectangle for a line-end fragment: the
// drawn end extended by HammerExt and widened by HammerWing per side,
// with head depth equal to the wing.
func hammerhead(f geom.Fragment, r Recipe) geom.Polygon {
	e := f.Edge
	n := e.Normal()
	// The head spans the line width (the edge itself) plus wings along
	// the edge direction, and extends HammerExt outward plus a depth
	// equal to HammerWing inward for manufacturability.
	d := e.Dir.Delta()
	a, b := e.A, e.B
	lo := geom.Pt(minC(a.X, b.X), minC(a.Y, b.Y))
	hi := geom.Pt(maxC(a.X, b.X), maxC(a.Y, b.Y))
	// Widen along the edge axis.
	if d.X != 0 { // horizontal line-end edge (vertical line tip? no: edge runs along x)
		lo.X -= r.HammerWing
		hi.X += r.HammerWing
	} else {
		lo.Y -= r.HammerWing
		hi.Y += r.HammerWing
	}
	// Extend outward and inward across the edge.
	depthIn := r.HammerWing
	if n.X > 0 {
		hi.X += r.HammerExt
		lo.X -= depthIn
	} else if n.X < 0 {
		lo.X -= r.HammerExt
		hi.X += depthIn
	} else if n.Y > 0 {
		hi.Y += r.HammerExt
		lo.Y -= depthIn
	} else {
		lo.Y -= r.HammerExt
		hi.Y += depthIn
	}
	return geom.R(lo.X, lo.Y, hi.X, hi.Y).Polygon()
}

// cornerSerif returns the serif square at the corner end of a corner
// fragment. For convex corners the square is centered on the corner
// vertex (added); for concave it is likewise centered (subtracted).
func cornerSerif(f geom.Fragment, size geom.Coord, convex bool) (geom.Polygon, bool) {
	var v geom.Point
	switch {
	case convex && f.Edge.CornerA == geom.Convex:
		v = f.Edge.A
	case convex && f.Edge.CornerB == geom.Convex:
		v = f.Edge.B
	case !convex && f.Edge.CornerA == geom.Concave:
		v = f.Edge.A
	case !convex && f.Edge.CornerB == geom.Concave:
		v = f.Edge.B
	default:
		return nil, false
	}
	half := size / 2
	return geom.R(v.X-half, v.Y-half, v.X+half, v.Y+half).Polygon(), true
}

// scatteringBars places one assist bar parallel to each sufficiently
// open edge. Bars are merged and then trimmed against a forbidden halo
// around all main features so they never touch printing geometry.
func scatteringBars(target []geom.Polygon, r Recipe) []geom.Polygon {
	var bars []geom.Rect
	for pi, p := range target {
		// Bars span whole edges, not fragments: assist placement is an
		// edge-scale decision.
		for _, e := range p.Edges() {
			if e.Len() < 3*r.SRAFWidth {
				continue // too short to benefit
			}
			f := geom.Fragment{Edge: e, PolyIndex: pi}
			space := opc.NeighborDistance(f, target, pi, r.MaxProbe)
			if space < r.SRAFMinOpen {
				continue
			}
			n := e.Normal()
			a, b := e.A, e.B
			lo := geom.Pt(minC(a.X, b.X), minC(a.Y, b.Y))
			hi := geom.Pt(maxC(a.X, b.X), maxC(a.Y, b.Y))
			off0 := r.SRAFSpace
			off1 := r.SRAFSpace + r.SRAFWidth
			var bar geom.Rect
			switch {
			case n.X > 0:
				bar = geom.R(hi.X+off0, lo.Y, hi.X+off1, hi.Y)
			case n.X < 0:
				bar = geom.R(lo.X-off1, lo.Y, lo.X-off0, hi.Y)
			case n.Y > 0:
				bar = geom.R(lo.X, hi.Y+off0, hi.X, hi.Y+off1)
			default:
				bar = geom.R(lo.X, lo.Y-off1, hi.X, lo.Y-off0)
			}
			bars = append(bars, bar)
		}
	}
	if len(bars) == 0 {
		return nil
	}
	// Merge overlapping bars, then keep clear of main features by a
	// halo of SRAFSpace/2.
	barRegion := geom.RegionFromRects(bars...)
	halo := geom.RegionFromPolygons(target...).Grow(r.SRAFSpace / 2)
	return barRegion.Subtract(halo).Polygons()
}

// Fragment kind aliases so the bar placer reads cleanly.
const (
	RunKind    = geom.RunFragment
	ConvexKind = geom.ConvexCornerFragment
)

func minC(a, b geom.Coord) geom.Coord {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b geom.Coord) geom.Coord {
	if a > b {
		return a
	}
	return b
}
