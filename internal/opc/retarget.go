package opc

import (
	"fmt"

	"goopc/internal/geom"
)

// Retarget performs the pre-OPC retargeting stage: drawn features
// narrower than minCD cannot be recovered by edge correction alone (the
// MRC clamps movement and the image contrast collapses), so the flow
// replaces their narrow parts with minCD-wide targets before correction.
// Legal geometry passes through untouched.
//
// The returned polygons are the new correction target; the original
// drawn layer remains the design intent the designer sees.
func Retarget(target []geom.Polygon, minCD geom.Coord) ([]geom.Polygon, error) {
	if minCD <= 1 {
		return nil, fmt.Errorf("opc: retarget needs minCD > 1")
	}
	if len(target) == 0 {
		return nil, nil
	}
	region := geom.RegionFromPolygons(target...)
	narrow := region.NarrowerThan(minCD)
	if narrow.Empty() {
		return target, nil
	}
	// Replace each narrow piece with its minCD-wide version: grow the
	// sliver along its thin axis until it meets the rule. Growing by
	// (minCD - w + 1) / 2 per side makes a w-wide run minCD wide; grow
	// symmetrically with the exact square element via repeated
	// directional dilation of the sliver region.
	var patches []geom.Rect
	for _, r := range narrow.Rects() {
		w, h := r.W(), r.H()
		rr := r
		if w < minCD {
			d := (minCD - w + 1) / 2
			rr.X0 -= d
			rr.X1 += d
		}
		if h < minCD {
			d := (minCD - h + 1) / 2
			rr.Y0 -= d
			rr.Y1 += d
		}
		patches = append(patches, rr)
	}
	patched := region.Union(geom.RegionFromRects(patches...))
	return patched.Polygons(), nil
}
