package opc

import (
	"math"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

func fastSim(t *testing.T) *optics.Simulator {
	t.Helper()
	s := optics.Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	sim, err := optics.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestMRCClamp(t *testing.T) {
	m := MRC{MaxBias: 40, MinBias: -40, Grid: 2}
	cases := []struct{ in, want geom.Coord }{
		{0, 0},
		{3, 4}, // snaps to grid
		{-3, -4},
		{100, 40},   // clamps high
		{-100, -40}, // clamps low
		{39, 40},
		{2, 2},
	}
	for _, c := range cases {
		if got := m.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// Grid 1 passes values through (within bounds).
	m1 := MRC{MaxBias: 40, MinBias: -40, Grid: 1}
	if got := m1.Clamp(3); got != 3 {
		t.Errorf("grid-1 Clamp(3) = %d", got)
	}
}

func TestResultAllMask(t *testing.T) {
	r := Result{
		Corrected: []geom.Polygon{geom.R(0, 0, 10, 10).Polygon()},
		SRAFs:     []geom.Polygon{geom.R(20, 0, 25, 10).Polygon()},
	}
	if got := len(r.AllMask()); got != 2 {
		t.Errorf("AllMask = %d polygons", got)
	}
	u := Uncorrected(r.Corrected)
	if len(u.AllMask()) != 1 || len(u.SRAFs) != 0 {
		t.Error("Uncorrected should pass through")
	}
}

func TestWindowFor(t *testing.T) {
	polys := []geom.Polygon{
		geom.R(0, 0, 100, 100).Polygon(),
		geom.R(500, 500, 600, 700).Polygon(),
	}
	w := WindowFor(polys, 250)
	if w != geom.R(-250, -250, 850, 950) {
		t.Errorf("window = %v", w)
	}
}

func TestNeighborDistance(t *testing.T) {
	a := geom.R(0, 0, 100, 1000).Polygon()
	b := geom.R(400, 0, 500, 1000).Polygon()
	polys := []geom.Polygon{a, b}
	frags := geom.FragmentPolygon(a, 0, geom.FragmentSpec{MaxLen: 1000, CornerLen: 0, LineEndMax: 150})
	// Find the east-facing fragment of a (its right edge, at x=100).
	var east *geom.Fragment
	for i := range frags {
		if frags[i].Edge.Normal() == geom.Pt(1, 0) {
			east = &frags[i]
		}
	}
	if east == nil {
		t.Fatal("no east-facing fragment")
	}
	d := NeighborDistance(*east, polys, 0, 2000)
	if d != 300 {
		t.Errorf("neighbor distance = %d, want 300", d)
	}
	// The west side sees nothing: max distance returned.
	var west *geom.Fragment
	for i := range frags {
		if frags[i].Edge.Normal() == geom.Pt(-1, 0) {
			west = &frags[i]
		}
	}
	if d := NeighborDistance(*west, polys, 0, 2000); d != 2000 {
		t.Errorf("iso distance = %d, want 2000", d)
	}
}

func TestNeighborDistanceVertical(t *testing.T) {
	a := geom.R(0, 0, 1000, 100).Polygon()
	b := geom.R(0, 350, 1000, 450).Polygon()
	frags := geom.FragmentPolygon(a, 0, geom.FragmentSpec{MaxLen: 2000, CornerLen: 0, LineEndMax: 150})
	var north *geom.Fragment
	for i := range frags {
		if frags[i].Edge.Normal() == geom.Pt(0, 1) {
			north = &frags[i]
		}
	}
	if north == nil {
		t.Fatal("no north fragment")
	}
	if d := NeighborDistance(*north, []geom.Polygon{a, b}, 0, 2000); d != 250 {
		t.Errorf("vertical neighbor distance = %d, want 250", d)
	}
}

func TestEvaluateEPEUncorrectedIso(t *testing.T) {
	sim := fastSim(t)
	th, err := resist.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	// An isolated 180 line misprints at the dense-calibrated threshold:
	// nonzero mean |EPE| on the long edges.
	target := []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
	window := geom.R(-500, -500, 500, 500)
	st, err := EvaluateEPE(sim, th, target, Uncorrected(target), window,
		geom.DefaultFragmentSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sites == 0 {
		t.Fatal("no sites")
	}
	if st.MeanAbs < 1 {
		t.Errorf("iso line should show EPE at dense calibration, mean=%.2f", st.MeanAbs)
	}
	if st.Max < st.MeanAbs {
		t.Error("max < mean")
	}
	if st.RMS < st.MeanAbs {
		t.Error("RMS must be >= mean abs")
	}
}

func TestEvaluateEPEStatsShape(t *testing.T) {
	// A synthetic image where everything resolves: flat bright field,
	// target edges all unresolved -> Unresolved counts.
	f := optics.Frame{W: 64, H: 64, PixelNM: 16, OriginX: -512, OriginY: -512}
	im := &optics.Image{Frame: f, I: make([]float64, 64*64)}
	for i := range im.I {
		im.I[i] = 1.0
	}
	target := []geom.Polygon{geom.R(-100, -100, 100, 100).Polygon()}
	st := EvaluateEPEOnImage(im, 0.3, target, geom.DefaultFragmentSpec(), 100)
	if st.Unresolved != st.Sites {
		t.Errorf("flat field: unresolved=%d sites=%d", st.Unresolved, st.Sites)
	}
	if !math.IsNaN(st.MeanAbs) && st.MeanAbs != 0 {
		t.Errorf("no resolved sites but MeanAbs=%f", st.MeanAbs)
	}
}

func TestRetargetWidensNarrow(t *testing.T) {
	// A 120-wide line among legal geometry: only it changes.
	target := []geom.Polygon{
		geom.R(0, 0, 120, 2000).Polygon(),
		geom.R(1000, 0, 1180, 2000).Polygon(),
	}
	out, err := Retarget(target, 180)
	if err != nil {
		t.Fatal(err)
	}
	region := geom.RegionFromPolygons(out...)
	// The narrow line is now at least 180 wide.
	if !region.NarrowerThan(180).Empty() {
		t.Error("retarget left narrow geometry")
	}
	// The legal line is untouched.
	legal := geom.RegionFromPolygons(target[1])
	if !legal.Xor(region.Intersect(geom.RegionFromRects(geom.R(900, -100, 1300, 2100)))).Empty() {
		t.Error("legal geometry modified")
	}
}

func TestRetargetPassThrough(t *testing.T) {
	target := []geom.Polygon{geom.R(0, 0, 200, 2000).Polygon()}
	out, err := Retarget(target, 180)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Area() != target[0].Area() {
		t.Error("clean geometry must pass through")
	}
	if _, err := Retarget(target, 0); err == nil {
		t.Error("zero minCD should fail")
	}
	if out, err := Retarget(nil, 180); err != nil || out != nil {
		t.Error("empty input should pass")
	}
}

func TestRetargetNarrowTab(t *testing.T) {
	// A narrow tab on a wide block gets widened; the block stays.
	target := []geom.Polygon{{
		geom.Pt(0, 0), geom.Pt(1000, 0), geom.Pt(1000, 400),
		geom.Pt(1100, 400), geom.Pt(1100, 500), geom.Pt(1000, 500),
		geom.Pt(1000, 1000), geom.Pt(0, 1000),
	}}
	// The tab is the 100x100 bump at (1000..1100, 400..500).
	out, err := Retarget(target, 180)
	if err != nil {
		t.Fatal(err)
	}
	region := geom.RegionFromPolygons(out...)
	if !region.NarrowerThan(180).Empty() {
		t.Error("tab still narrow")
	}
	if region.Area() <= geom.RegionFromPolygons(target...).Area() {
		t.Error("retarget should add area")
	}
}
