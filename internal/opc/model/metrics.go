package model

import "goopc/internal/obs"

// Registry series for the correction engine: run outcomes, the
// iteration-count distribution the convergence early-exit shrinks, and
// the per-iteration EPE-RMS distribution — the quality trajectory of
// every engine run in the flow.
var (
	mRuns = obs.Default().Counter("goopc_model_runs_total",
		"model-OPC engine runs (Correct calls)")
	mConverged = obs.Default().Counter("goopc_model_converged_total",
		"engine runs that hit the EPE tolerance before MaxIter")
	mEarlyExit = obs.Default().Counter("goopc_model_early_exit_total",
		"engine runs ended by the RMS-improvement criterion (RMSEps)")
	mIterations = obs.Default().Histogram("goopc_model_iterations",
		"correction iterations per engine run",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16})
	mEPERMS = obs.Default().Histogram("goopc_model_epe_rms_nm",
		"EPE RMS (nm) at each measured iteration, all engine runs",
		[]float64{0.5, 1, 2, 4, 8, 16, 32, 64})
	mWarmRuns = obs.Default().Counter("goopc_model_warm_runs_total",
		"engine runs warm-started by an InitialBias prior")
	mWarmFragments = obs.Default().Counter("goopc_model_warm_fragments_total",
		"fragments seeded by an InitialBias prior before iteration 0")
)
