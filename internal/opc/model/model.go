// Package model implements model-based OPC: every polygon edge is
// dissected into fragments, each fragment carries a control site at its
// midpoint, and a damped fixed-point iteration moves each fragment along
// its normal to drive the simulated edge placement error to zero, under
// mask-rule constraints. This is the algorithm class of the first
// production model-based OPC tools whose adoption the reproduced paper
// describes.
package model

import (
	"context"
	"fmt"
	"math"
	"sync"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// Engine holds the correction configuration.
type Engine struct {
	// Sim is the imaging model; Threshold the calibrated resist
	// threshold.
	Sim       *optics.Simulator
	Threshold float64
	// Spec controls edge dissection.
	Spec geom.FragmentSpec
	// MaxIter bounds the feedback loop; Tol (nm) stops early when the
	// worst |EPE| falls below it.
	MaxIter int
	Tol     float64
	// RMSEps, when positive, stops the loop once the per-iteration EPE
	// RMS improvement drops below it: the fixed point has been reached
	// (or the loop has started oscillating, which only worsens the
	// result) and further iterations buy nothing. Zero keeps the full
	// MaxIter budget, reproducing the historical behavior.
	RMSEps float64
	// Damping scales the per-iteration correction step (0 < d <= 1).
	// Under-damping oscillates, over-damping converges slowly; the
	// convergence ablation (R-F4) sweeps this.
	Damping float64
	// MRC clamps the accumulated bias of every fragment.
	MRC opc.MRC
	// MaxSearch bounds the EPE contour search (nm).
	MaxSearch float64
	// SRAFs, when non-nil, are frozen assist features included in every
	// simulation but never moved.
	SRAFs []geom.Polygon
	// Context, when non-nil, are neighboring main features included in
	// every simulation as drawn but not corrected and not returned —
	// the halo geometry of tiled full-layer correction.
	Context []geom.Polygon
	// FreezeBoundary, when non-nil, locks every fragment whose edge
	// lies on the boundary of this rectangle: the artificial cut edges
	// introduced by clipping a layer into tiles. Frozen fragments are
	// never moved and never measured (their printed edge continues in
	// the neighboring tile).
	FreezeBoundary *geom.Rect
	// FocusList enables process-window OPC: when non-empty, each
	// iteration evaluates the EPE at every listed defocus (nm) and
	// corrects against the average — trading best-focus fidelity for
	// through-focus stability. Empty means best-focus-only correction.
	FocusList []float64
	// Ctx, when non-nil, bounds the correction: cancellation or
	// deadline expiry aborts the loop between iterations (and inside
	// the imaging engine between kernel evaluations) with the context
	// error. The tiled scheduler sets this to enforce per-tile
	// timeouts; nil means run to completion.
	Ctx context.Context
	// InitialBias, when non-nil, seeds fragment biases before the first
	// iteration (warm start): it is consulted once per non-frozen
	// fragment after dissection, and a true second return applies the
	// returned bias, clamped by MRC like every correction step. The
	// learned prior (internal/prior) plugs in here; a good prediction
	// puts iteration 0's measurement near the fixed point, so the loop
	// converges in fewer steps. Nil leaves every bias at zero — the
	// historical cold start — and the engine behaves bit-identically.
	InitialBias func(f geom.Fragment) (geom.Coord, bool)
}

// ctx returns the engine's context, defaulting to Background.
func (e *Engine) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// frozen reports whether a fragment lies on the freeze boundary.
func (e *Engine) frozen(f geom.Fragment) bool {
	if e.FreezeBoundary == nil {
		return false
	}
	b := *e.FreezeBoundary
	a, bp := f.Edge.A, f.Edge.B
	if a.X == bp.X { // vertical edge
		return a.X == b.X0 || a.X == b.X1
	}
	return a.Y == b.Y0 || a.Y == b.Y1
}

// New returns an engine with production-typical defaults: 8 iterations,
// 0.7 damping, 1.5 nm tolerance, default fragmentation and mask rules.
func New(sim *optics.Simulator, threshold float64) *Engine {
	return &Engine{
		Sim:       sim,
		Threshold: threshold,
		Spec:      geom.DefaultFragmentSpec(),
		MaxIter:   8,
		Tol:       1.5,
		Damping:   0.7,
		MRC:       opc.DefaultMRC(),
		MaxSearch: 400,
	}
}

// Convergence records the per-iteration EPE statistics of a correction
// run (index 0 is the uncorrected starting point).
type Convergence struct {
	PerIter []opc.EPEStats
	// Iterations is the number of correction steps actually taken.
	Iterations int
	// Converged is true when the loop hit Tol before MaxIter.
	Converged bool
	// EarlyExit is true when the RMS-improvement criterion (RMSEps)
	// ended the loop before MaxIter.
	EarlyExit bool
	// WarmStarted counts the fragments seeded by the InitialBias hook
	// before iteration 0 (zero for cold runs).
	WarmStarted int
	// WarmRestored is true when a warm-started run returned an earlier
	// iterate than its last: warmed runs keep the best-RMS measured
	// state, because one update step from an already-stalled seeded
	// state can oscillate away from the fixed point. Cold runs always
	// return the last iterate (bit-compatible with prior releases).
	// When set, PerIter's final entry repeats the restored iterate's
	// statistics so Final() describes the returned geometry.
	WarmRestored bool
}

// Final returns the EPE statistics after the last iteration.
func (c Convergence) Final() opc.EPEStats {
	if len(c.PerIter) == 0 {
		return opc.EPEStats{}
	}
	return c.PerIter[len(c.PerIter)-1]
}

// Correct runs the feedback loop on the drawn polygons. The returned
// result contains the corrected polygons (fragment jogs materialized)
// plus the engine's frozen SRAFs, and the convergence trace.
func (e *Engine) Correct(target []geom.Polygon, window geom.Rect) (opc.Result, Convergence, error) {
	res, conv, _, err := e.CorrectFragments(target, window)
	return res, conv, err
}

// CorrectFragments is Correct exposing the final fragment state: one
// fragment list per target polygon, in dissection order, each carrying
// its converged Bias. The dataset factory records per-fragment biases
// from this; everyone else uses Correct.
func (e *Engine) CorrectFragments(target []geom.Polygon, window geom.Rect) (opc.Result, Convergence, [][]geom.Fragment, error) {
	if e.Sim == nil {
		return opc.Result{}, Convergence{}, nil, fmt.Errorf("model: nil simulator")
	}
	if e.MaxIter < 1 {
		return opc.Result{}, Convergence{}, nil, fmt.Errorf("model: MaxIter %d", e.MaxIter)
	}
	if e.Damping <= 0 || e.Damping > 1.5 {
		return opc.Result{}, Convergence{}, nil, fmt.Errorf("model: damping %v out of range", e.Damping)
	}
	// Fragment every target polygon once; biases accumulate across
	// iterations.
	frags := make([][]geom.Fragment, len(target))
	for i, p := range target {
		frags[i] = geom.FragmentPolygon(p, i, e.Spec)
	}
	var conv Convergence
	if e.InitialBias != nil {
		// Warm start: seed predicted biases before the first
		// measurement, clamped exactly like an update step. Frozen
		// (cut-edge) fragments never move, warm or cold.
		for i := range frags {
			for j := range frags[i] {
				f := &frags[i][j]
				if e.frozen(*f) {
					continue
				}
				if b, ok := e.InitialBias(*f); ok {
					f.Bias = e.MRC.Clamp(b)
					conv.WarmStarted++
				}
			}
		}
	}
	var (
		bestFrags [][]geom.Fragment
		bestRMS   float64
		bestStats opc.EPEStats
	)
	extra := make([]geom.Polygon, 0, len(e.SRAFs)+len(e.Context))
	extra = append(extra, e.SRAFs...)
	extra = append(extra, e.Context...)
	foci := e.FocusList
	if len(foci) == 0 {
		foci = []float64{e.Sim.S.DefocusNM}
	}
	ctx := e.ctx()
	for iter := 0; iter <= e.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return opc.Result{}, conv, nil, fmt.Errorf("model: iteration %d: %w", iter, err)
		}
		mask := e.rebuild(frags)
		full := append(mask, extra...)
		images, err := e.imageFoci(ctx, full, window, foci)
		if err != nil {
			return opc.Result{}, conv, nil, fmt.Errorf("model: iteration %d imaging: %w", iter, err)
		}
		stats, worst := e.measure(images, frags)
		mEPERMS.Observe(stats.RMS)
		conv.PerIter = append(conv.PerIter, stats)
		if conv.WarmStarted > 0 && (bestFrags == nil || stats.RMS < bestRMS) {
			// Warmed runs keep the best measured iterate (see
			// Convergence.WarmRestored); the copy is fragment values
			// only, cheap next to an imaging pass.
			bestRMS, bestStats, bestFrags = stats.RMS, stats, copyFrags(frags)
		}
		if worst <= e.Tol {
			conv.Converged = true
			break
		}
		if e.RMSEps > 0 && len(conv.PerIter) >= 2 {
			prev := conv.PerIter[len(conv.PerIter)-2]
			if prev.RMS-stats.RMS < e.RMSEps {
				conv.EarlyExit = true
				break
			}
		}
		if iter == e.MaxIter {
			break
		}
		e.update(images, frags)
		conv.Iterations++
	}
	mRuns.Inc()
	mIterations.Observe(float64(conv.Iterations))
	if conv.Converged {
		mConverged.Inc()
	}
	if conv.EarlyExit {
		mEarlyExit.Inc()
	}
	if conv.WarmStarted > 0 {
		mWarmRuns.Inc()
		mWarmFragments.Add(int64(conv.WarmStarted))
	}
	if bestFrags != nil && bestRMS < conv.Final().RMS {
		frags = bestFrags
		conv.PerIter = append(conv.PerIter, bestStats)
		conv.WarmRestored = true
	}
	return opc.Result{Corrected: e.rebuild(frags), SRAFs: e.SRAFs}, conv, frags, nil
}

// copyFrags deep-copies the per-polygon fragment lists (fragments are
// plain values).
func copyFrags(frags [][]geom.Fragment) [][]geom.Fragment {
	out := make([][]geom.Fragment, len(frags))
	for i, fl := range frags {
		out[i] = append([]geom.Fragment(nil), fl...)
	}
	return out
}

// imageFoci computes one aerial image per focus. Process-window OPC on
// a parallel simulator evaluates the foci concurrently (the simulator
// is safe for concurrent use and its kernel cache is shared); images
// land at their focus index, so the result is order-deterministic.
func (e *Engine) imageFoci(ctx context.Context, mask []geom.Polygon, window geom.Rect, foci []float64) ([]*optics.Image, error) {
	images := make([]*optics.Image, len(foci))
	if !e.Sim.S.Parallel || len(foci) < 2 {
		for i, z := range foci {
			im, err := e.Sim.AerialDefocusCtx(ctx, mask, window, z)
			if err != nil {
				return nil, err
			}
			images[i] = im
		}
		return images, nil
	}
	errs := make([]error, len(foci))
	var wg sync.WaitGroup
	for i, z := range foci {
		wg.Add(1)
		go func(i int, z float64) {
			defer wg.Done()
			images[i], errs[i] = e.Sim.AerialDefocusCtx(ctx, mask, window, z)
		}(i, z)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return images, nil
}

// rebuild materializes the current fragment biases into polygons.
func (e *Engine) rebuild(frags [][]geom.Fragment) []geom.Polygon {
	out := make([]geom.Polygon, 0, len(frags))
	for _, fs := range frags {
		p := geom.RebuildPolygon(fs)
		if len(p) >= 4 {
			out = append(out, p)
		}
	}
	return out
}

// measure evaluates the signed EPE at every control site against the
// image set (averaged over foci for process-window OPC) and returns
// aggregate statistics plus the worst |EPE|. Control sites sit at the
// *drawn* fragment midpoints: OPC drives the printed contour to the
// drawn edge, wherever the mask edge has moved.
func (e *Engine) measure(images []*optics.Image, frags [][]geom.Fragment) (opc.EPEStats, float64) {
	var st opc.EPEStats
	var sumAbs, sumSq, sumSigned float64
	worst := 0.0
	for _, fs := range frags {
		for _, f := range fs {
			if e.frozen(f) {
				continue
			}
			st.Sites++
			epe, err := e.siteEPE(images, f)
			if err != nil {
				st.Unresolved++
				// Unresolved sites count as worst-case so the loop keeps
				// working on them.
				worst = math.Max(worst, e.MaxSearch)
				continue
			}
			a := math.Abs(epe)
			sumAbs += a
			sumSq += epe * epe
			sumSigned += epe
			if a > st.Max {
				st.Max = a
			}
			worst = math.Max(worst, a)
		}
	}
	resolved := st.Sites - st.Unresolved
	if resolved > 0 {
		st.MeanAbs = sumAbs / float64(resolved)
		st.RMS = math.Sqrt(sumSq / float64(resolved))
		st.MeanSigned = sumSigned / float64(resolved)
	}
	return st, worst
}

// siteEPE averages the signed EPE over the image set. A site is
// unresolved only when it resolves in no image; resolving in at least
// one focus keeps the feedback alive (the average then reflects the
// conditions that still print).
func (e *Engine) siteEPE(images []*optics.Image, f geom.Fragment) (float64, error) {
	mid := f.Edge.Mid()
	n := f.Edge.Normal()
	var sum float64
	ok := 0
	var lastErr error
	for _, im := range images {
		epe, err := resist.EPE(im, e.Threshold, float64(mid.X), float64(mid.Y),
			float64(n.X), float64(n.Y), e.MaxSearch)
		if err != nil {
			lastErr = err
			continue
		}
		sum += epe
		ok++
	}
	if ok == 0 {
		return 0, lastErr
	}
	return sum / float64(ok), nil
}

// update applies one damped feedback step: a positive EPE (printed
// feature beyond the drawn edge) retracts the mask edge, and vice
// versa. Unresolved sites take a fixed probing step outward, which
// recovers pinched-off features.
func (e *Engine) update(images []*optics.Image, frags [][]geom.Fragment) {
	for _, fs := range frags {
		for i := range fs {
			f := &fs[i]
			if e.frozen(*f) {
				continue
			}
			epe, err := e.siteEPE(images, *f)
			var step geom.Coord
			if err != nil {
				// No contour found: the feature likely failed to print
				// at this site; push the mask edge outward to recover.
				step = 4
			} else {
				step = geom.Coord(math.Round(-e.Damping * epe))
			}
			f.Bias = e.MRC.Clamp(f.Bias + step)
		}
	}
}
