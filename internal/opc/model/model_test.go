package model

import (
	"testing"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

func fastEngine(t *testing.T) *Engine {
	t.Helper()
	s := optics.Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	sim, err := optics.New(s)
	if err != nil {
		t.Fatal(err)
	}
	th, err := resist.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	return New(sim, th)
}

func TestEngineValidation(t *testing.T) {
	e := &Engine{}
	if _, _, err := e.Correct(nil, geom.R(0, 0, 100, 100)); err == nil {
		t.Error("nil simulator should fail")
	}
	e2 := fastEngine(t)
	e2.MaxIter = 0
	if _, _, err := e2.Correct(nil, geom.R(0, 0, 100, 100)); err == nil {
		t.Error("zero MaxIter should fail")
	}
	e3 := fastEngine(t)
	e3.Damping = -1
	if _, _, err := e3.Correct(nil, geom.R(0, 0, 100, 100)); err == nil {
		t.Error("negative damping should fail")
	}
}

func TestModelOPCReducesEPE(t *testing.T) {
	e := fastEngine(t)
	e.MaxIter = 6
	// An isolated 180 line plus a line end: both misprint uncorrected.
	target := []geom.Polygon{
		geom.R(-90, -2500, 90, 0).Polygon(),
	}
	window := opc.WindowFor(target, 600)
	res, conv, err := e.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv.PerIter) < 2 {
		t.Fatalf("iterations recorded = %d", len(conv.PerIter))
	}
	initial := conv.PerIter[0]
	final := conv.Final()
	if final.RMS >= initial.RMS {
		t.Errorf("EPE RMS did not improve: %.2f -> %.2f", initial.RMS, final.RMS)
	}
	if final.RMS > initial.RMS/2 {
		t.Errorf("EPE RMS should drop at least 2x: %.2f -> %.2f", initial.RMS, final.RMS)
	}
	if len(res.Corrected) == 0 {
		t.Fatal("no corrected polygons")
	}
	// Corrected mask differs from the target.
	same := geom.RegionFromPolygons(res.Corrected...).
		Xor(geom.RegionFromPolygons(target...))
	if same.Empty() {
		t.Error("correction produced the identity mask")
	}
}

func TestModelOPCConvergenceMonotoneEnough(t *testing.T) {
	e := fastEngine(t)
	e.MaxIter = 6
	target := []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
	window := opc.WindowFor(target, 600)
	_, conv, err := e.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	// RMS at the end must be below the start; intermediate wiggle is
	// allowed but the trace must never exceed 2x the starting error.
	start := conv.PerIter[0].RMS
	for i, st := range conv.PerIter {
		if st.RMS > 2*start+1 {
			t.Errorf("iteration %d diverged: RMS %.2f vs start %.2f", i, st.RMS, start)
		}
	}
}

func TestModelOPCDenseTargets(t *testing.T) {
	e := fastEngine(t)
	e.MaxIter = 5
	// Dense 180/360 lines: small corrections only; must converge near
	// tolerance quickly.
	var target []geom.Polygon
	for i := -2; i <= 2; i++ {
		x := geom.Coord(i) * 360
		target = append(target, geom.R(x-90, -1500, x+90, 1500).Polygon())
	}
	window := opc.WindowFor(target, 600)
	_, conv, err := e.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Final().RMS > 6 {
		t.Errorf("dense final RMS = %.2f nm", conv.Final().RMS)
	}
}

func TestModelOPCRespectsMRC(t *testing.T) {
	e := fastEngine(t)
	e.MaxIter = 4
	e.MRC = opc.MRC{MaxBias: 10, MinBias: -10, Grid: 2}
	target := []geom.Polygon{geom.R(-90, -2000, 90, 0).Polygon()}
	window := opc.WindowFor(target, 600)
	res, _, err := e.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	// Every corrected vertex must lie within MaxBias of the drawn
	// geometry envelope.
	orig := geom.RegionFromPolygons(target...)
	outer := orig.Grow(10)
	inner := orig.Shrink(10)
	corr := geom.RegionFromPolygons(res.Corrected...)
	if !corr.Subtract(outer).Empty() {
		t.Error("corrected mask exceeds +MaxBias envelope")
	}
	if !inner.Subtract(corr).Empty() {
		t.Error("corrected mask violates -MinBias envelope")
	}
}

func TestModelOPCWithSRAFs(t *testing.T) {
	e := fastEngine(t)
	e.MaxIter = 3
	bar1 := geom.R(-460, -2000, -360, 2000).Polygon()
	bar2 := geom.R(360, -2000, 460, 2000).Polygon()
	e.SRAFs = []geom.Polygon{bar1, bar2}
	target := []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
	window := opc.WindowFor(target, 800)
	res, conv, err := e.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SRAFs) != 2 {
		t.Error("SRAFs must pass through unchanged")
	}
	if conv.Final().RMS > conv.PerIter[0].RMS {
		t.Error("correction with SRAFs should not degrade")
	}
}

func TestConvergenceFinalEmpty(t *testing.T) {
	var c Convergence
	if st := c.Final(); st.Sites != 0 {
		t.Error("empty convergence should return zero stats")
	}
}

func TestProcessWindowOPC(t *testing.T) {
	// Correcting against a focus list must improve the defocused EPE
	// relative to best-focus-only correction, at some best-focus cost.
	e1 := fastEngine(t)
	e1.MaxIter = 5
	e2 := fastEngine(t)
	e2.MaxIter = 5
	e2.FocusList = []float64{0, 300}
	target := []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
	window := opc.WindowFor(target, 600)

	res1, _, err := e1.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := e2.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both masks at 300 nm defocus (within the DOF scale so
	// the feature still prints and EPE is measurable).
	evalAt := func(res opc.Result, z float64) float64 {
		im, err := e1.Sim.AerialDefocus(res.AllMask(), window, z)
		if err != nil {
			t.Fatal(err)
		}
		st := opc.EvaluateEPEOnImage(im, e1.Threshold, target, e1.Spec, 400)
		if st.Sites == st.Unresolved {
			t.Fatal("feature vanished at evaluation defocus")
		}
		return st.RMS
	}
	defoc1 := evalAt(res1, 300)
	defoc2 := evalAt(res2, 300)
	if defoc2 >= defoc1 {
		t.Errorf("PW-OPC did not help at defocus: %.2f vs %.2f", defoc2, defoc1)
	}
}

func TestFreezeBoundary(t *testing.T) {
	e := fastEngine(t)
	e.MaxIter = 3
	b := geom.R(-90, -2000, 600, 2000)
	e.FreezeBoundary = &b
	// A line whose left edge lies exactly on the freeze rect boundary.
	target := []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
	window := opc.WindowFor(target, 600)
	res, _, err := e.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	// The frozen left edge must not have moved: region minimum X is
	// exactly -90. The top/bottom edges at y=+-2000 are also frozen.
	bb := geom.RegionFromPolygons(res.Corrected...).BBox()
	if bb.X0 != -90 {
		t.Errorf("frozen edge moved: X0 = %d", bb.X0)
	}
	if bb.Y0 != -2000 || bb.Y1 != 2000 {
		t.Errorf("frozen cut edges moved: %v", bb)
	}
	// The free right edge did move.
	if bb.X1 == 90 {
		t.Error("free edge did not move at all")
	}
}

func TestEarlyExitStopsAndDoesNotWorsen(t *testing.T) {
	target := []geom.Polygon{geom.R(-90, -2500, 90, 0).Polygon()}
	window := opc.WindowFor(target, 600)

	full := fastEngine(t)
	full.MaxIter = 8
	_, fullConv, err := full.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}

	early := fastEngine(t)
	early.MaxIter = 8
	early.RMSEps = 0.3
	_, earlyConv, err := early.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	if earlyConv.Iterations > fullConv.Iterations {
		t.Errorf("early exit took more iterations: %d > %d", earlyConv.Iterations, fullConv.Iterations)
	}
	if !earlyConv.Converged && !earlyConv.EarlyExit && earlyConv.Iterations == full.MaxIter {
		t.Error("RMSEps=0.3 never fired on an 8-iteration run")
	}
	// The point of the criterion: stopping once per-iteration improvement
	// falls below eps must not cost more than eps of final RMS.
	if earlyConv.Final().RMS > fullConv.Final().RMS+early.RMSEps {
		t.Errorf("early exit worsened final RMS: %.3f vs full %.3f (eps %.2f)",
			earlyConv.Final().RMS, fullConv.Final().RMS, early.RMSEps)
	}
	// Disabled eps reproduces the historical fixed-budget behavior.
	off := fastEngine(t)
	off.MaxIter = 8
	_, offConv, err := off.Correct(target, window)
	if err != nil {
		t.Fatal(err)
	}
	if offConv.EarlyExit {
		t.Error("RMSEps=0 must never set EarlyExit")
	}
	if len(offConv.PerIter) != len(fullConv.PerIter) {
		t.Errorf("RMSEps=0 changed the trace length: %d vs %d", len(offConv.PerIter), len(fullConv.PerIter))
	}
}
