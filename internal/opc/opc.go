// Package opc holds the shared framework both OPC engines build on:
// the corrected-mask result type, the edge-placement-error evaluation
// used to score a mask against its design target, mask-rule clamps on
// edge movement, and the neighbor-distance probe that classifies the
// proximity environment of an edge (the quantity rule-based bias tables
// are keyed on).
//
// The engines themselves live in the subpackages: opc/rules implements
// 2001-style rule-based correction (bias tables, hammerheads, serifs,
// scattering bars) and opc/model implements model-based correction
// (fragmentation plus damped EPE-feedback iteration against the aerial
// image simulator).
package opc

import (
	"fmt"
	"math"

	"goopc/internal/geom"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// Result is a corrected mask: the main-feature polygons plus any
// sub-resolution assist features (which go to their own layer and must
// not print).
type Result struct {
	Corrected []geom.Polygon
	SRAFs     []geom.Polygon
}

// AllMask returns the full mask pattern (main + assists) for simulation.
func (r Result) AllMask() []geom.Polygon {
	if len(r.SRAFs) == 0 {
		return r.Corrected
	}
	out := make([]geom.Polygon, 0, len(r.Corrected)+len(r.SRAFs))
	out = append(out, r.Corrected...)
	out = append(out, r.SRAFs...)
	return out
}

// Uncorrected wraps a drawn layer as a pass-through result (correction
// level L0).
func Uncorrected(polys []geom.Polygon) Result {
	return Result{Corrected: polys}
}

// MRC holds the mask-rule constraints that clamp edge movement. All in
// DBU (nm at 1x; mask-shop rules are quoted at 4x reticle scale, 1x
// here).
type MRC struct {
	// MaxBias and MinBias bound per-edge displacement.
	MaxBias, MinBias geom.Coord
	// Grid snaps biases to the mask writer address grid.
	Grid geom.Coord
}

// DefaultMRC matches a 2001 mask shop: +-40 nm movement, 2 nm grid.
func DefaultMRC() MRC { return MRC{MaxBias: 40, MinBias: -40, Grid: 2} }

// Clamp applies the constraints to a proposed bias.
func (m MRC) Clamp(b geom.Coord) geom.Coord {
	if m.Grid > 1 {
		// Round to the nearest grid step.
		half := m.Grid / 2
		if b >= 0 {
			b = (b + half) / m.Grid * m.Grid
		} else {
			b = -((-b + half) / m.Grid * m.Grid)
		}
	}
	if b > m.MaxBias {
		b = m.MaxBias
	}
	if b < m.MinBias {
		b = m.MinBias
	}
	return b
}

// EPEStats summarizes edge placement error over a set of control sites.
type EPEStats struct {
	Sites      int
	Unresolved int // sites where no contour crossing was found
	MeanAbs    float64
	RMS        float64
	Max        float64 // max |EPE|
	MeanSigned float64
}

// EvaluateEPE fragments the drawn target polygons, simulates the mask
// (which may differ from the target — that is the point of OPC), and
// measures the signed EPE at every fragment midpoint of the *target*.
// maxSearch bounds the contour search distance.
func EvaluateEPE(sim *optics.Simulator, threshold float64, target []geom.Polygon,
	mask Result, window geom.Rect, spec geom.FragmentSpec, maxSearch float64) (EPEStats, error) {
	im, err := sim.Aerial(mask.AllMask(), window)
	if err != nil {
		return EPEStats{}, fmt.Errorf("opc: EPE imaging: %w", err)
	}
	return EvaluateEPEOnImage(im, threshold, target, spec, maxSearch), nil
}

// EvaluateEPEOnImage measures EPE against an already-computed image.
func EvaluateEPEOnImage(im *optics.Image, threshold float64, target []geom.Polygon,
	spec geom.FragmentSpec, maxSearch float64) EPEStats {
	var st EPEStats
	var sumAbs, sumSq, sumSigned float64
	for pi, p := range target {
		for _, f := range geom.FragmentPolygon(p, pi, spec) {
			mid := f.Edge.Mid()
			n := f.Edge.Normal()
			st.Sites++
			epe, err := resist.EPE(im, threshold, float64(mid.X), float64(mid.Y),
				float64(n.X), float64(n.Y), maxSearch)
			if err != nil {
				st.Unresolved++
				continue
			}
			a := math.Abs(epe)
			sumAbs += a
			sumSq += epe * epe
			sumSigned += epe
			if a > st.Max {
				st.Max = a
			}
		}
	}
	resolved := st.Sites - st.Unresolved
	if resolved > 0 {
		st.MeanAbs = sumAbs / float64(resolved)
		st.RMS = math.Sqrt(sumSq / float64(resolved))
		st.MeanSigned = sumSigned / float64(resolved)
	}
	return st
}

// WindowFor returns the simulation window for a set of polygons: the
// bounding box grown by the optical ambit.
func WindowFor(polys []geom.Polygon, ambit geom.Coord) geom.Rect {
	var bb geom.Rect
	for i, p := range polys {
		if i == 0 {
			bb = p.BBox()
		} else {
			bb = bb.Union(p.BBox())
		}
	}
	return bb.Grow(ambit)
}

// NeighborDistance probes the open space in front of an edge fragment:
// the distance from the fragment midpoint, along the outward normal, to
// the nearest facing polygon (searching up to maxDist). It returns
// maxDist when nothing is found — the "isolated" classification.
//
// The probe works on the polygon set directly (not the simulator), so
// rule-based OPC can run without any imaging.
func NeighborDistance(frag geom.Fragment, polys []geom.Polygon, selfIdx int, maxDist geom.Coord) geom.Coord {
	mid := frag.Edge.Mid()
	n := frag.Edge.Normal()
	best := maxDist
	for pi, p := range polys {
		if pi == selfIdx {
			continue
		}
		d, ok := rayToPolygon(mid, n, p, maxDist)
		if ok && d < best {
			best = d
		}
	}
	return best
}

// rayToPolygon intersects an axis-aligned ray with a polygon boundary
// and returns the nearest hit distance.
func rayToPolygon(from geom.Point, dir geom.Point, p geom.Polygon, maxDist geom.Coord) (geom.Coord, bool) {
	best := maxDist + 1
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		var d geom.Coord
		var hit bool
		switch {
		case dir.X != 0 && a.X == b.X: // horizontal ray vs vertical edge
			lo, hi := a.Y, b.Y
			if lo > hi {
				lo, hi = hi, lo
			}
			if from.Y < lo || from.Y > hi {
				continue
			}
			delta := (a.X - from.X) * dir.X
			if delta >= 0 {
				d, hit = delta, true
			}
		case dir.Y != 0 && a.Y == b.Y: // vertical ray vs horizontal edge
			lo, hi := a.X, b.X
			if lo > hi {
				lo, hi = hi, lo
			}
			if from.X < lo || from.X > hi {
				continue
			}
			delta := (a.Y - from.Y) * dir.Y
			if delta >= 0 {
				d, hit = delta, true
			}
		}
		if hit && d < best {
			best = d
		}
	}
	if best > maxDist {
		return maxDist, false
	}
	return best, true
}
