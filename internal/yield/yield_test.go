package yield

import (
	"math"
	"testing"

	"goopc/internal/orc"
)

// syntheticSurface builds a PWResult with an analytic CD model:
// CD = 180 + a*(focus/100)^2 - b*(dose-1)*1000, so yield behavior is
// predictable.
func syntheticSurface(a, b float64) *orc.PWResult {
	focuses := []float64{-600, -400, -200, 0, 200, 400, 600}
	doses := []float64{0.90, 0.94, 0.98, 1.02, 1.06, 1.10}
	sites := []orc.PWSite{{Name: "s", TargetCD: 180, TolFrac: 0.10}}
	pw := &orc.PWResult{Focuses: focuses, Doses: doses, Sites: sites}
	pw.CD = make([][][]float64, 1)
	pw.CD[0] = make([][]float64, len(focuses))
	for f, focus := range focuses {
		pw.CD[0][f] = make([]float64, len(doses))
		for d, dose := range doses {
			pw.CD[0][f][d] = 180 + a*(focus/100)*(focus/100) - b*(dose-1)*1000
		}
	}
	return pw
}

func TestEstimateTightProcessYieldsHigh(t *testing.T) {
	pw := syntheticSurface(0.5, 0.2) // gentle response
	v := Variation{FocusSigmaNM: 80, DoseSigma: 0.01, Samples: 20000, Seed: 42}
	res, err := Estimate(pw, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield < 0.99 {
		t.Errorf("gentle surface yield = %.3f, want ~1", res.Yield)
	}
	st := res.SiteStats[0]
	if math.Abs(st.Mean-180) > 2 {
		t.Errorf("mean CD = %.1f", st.Mean)
	}
	if st.Sigma <= 0 || st.Sigma > 6 {
		t.Errorf("sigma = %.2f", st.Sigma)
	}
}

func TestEstimateSteepProcessYieldsLow(t *testing.T) {
	steep := syntheticSurface(3.0, 2.0) // strong focus/dose response
	v := Variation{FocusSigmaNM: 200, DoseSigma: 0.03, Samples: 20000, Seed: 42}
	resSteep, err := Estimate(steep, v)
	if err != nil {
		t.Fatal(err)
	}
	gentle := syntheticSurface(0.5, 0.2)
	resGentle, err := Estimate(gentle, v)
	if err != nil {
		t.Fatal(err)
	}
	if resSteep.Yield >= resGentle.Yield {
		t.Errorf("steep surface should yield less: %.3f vs %.3f", resSteep.Yield, resGentle.Yield)
	}
	if resSteep.Yield > 0.95 {
		t.Errorf("steep yield = %.3f, expected loss", resSteep.Yield)
	}
}

func TestEstimateNaNPropagates(t *testing.T) {
	pw := syntheticSurface(0.5, 0.2)
	// Poison the extreme focus rows: features vanish there.
	for d := range pw.Doses {
		pw.CD[0][0][d] = math.NaN()
		pw.CD[0][len(pw.Focuses)-1][d] = math.NaN()
	}
	v := Variation{FocusSigmaNM: 400, DoseSigma: 0.01, Samples: 20000, Seed: 7}
	res, err := Estimate(pw, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.SiteStats[0].FailedPrints == 0 {
		t.Error("wide focus distribution should hit the poisoned rows")
	}
	if res.Yield >= 1 {
		t.Error("failed prints must cost yield")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	pw := syntheticSurface(1, 1)
	v := DefaultVariation()
	v.Samples = 2000
	a, err := Estimate(pw, v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(pw, v)
	if err != nil {
		t.Fatal(err)
	}
	if a.Yield != b.Yield || a.Good != b.Good {
		t.Error("same seed must reproduce")
	}
}

func TestEstimateValidation(t *testing.T) {
	pw := syntheticSurface(1, 1)
	if _, err := Estimate(pw, Variation{Samples: 0}); err == nil {
		t.Error("zero samples should fail")
	}
	bad := &orc.PWResult{Focuses: []float64{0}, Doses: []float64{1, 1.1}}
	if _, err := Estimate(bad, DefaultVariation()); err == nil {
		t.Error("single focus should fail")
	}
}

func TestLocate(t *testing.T) {
	axis := []float64{-100, 0, 100}
	// Invariant: the (cell, fraction) pair reconstructs the clamped
	// value and stays in range.
	for _, v := range []float64{-200, -100, -50, 0, 50, 100, 300} {
		i, tt := locate(axis, v)
		if i < 0 || i >= len(axis)-1 || tt < 0 || tt > 1 {
			t.Fatalf("locate(%v) = %d,%f out of range", v, i, tt)
		}
		got := axis[i]*(1-tt) + axis[i+1]*tt
		want := math.Max(axis[0], math.Min(axis[len(axis)-1], v))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("locate(%v) reconstructs %f, want %f", v, got, want)
		}
	}
}
