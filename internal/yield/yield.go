// Package yield estimates parametric yield under process variation:
// focus and dose are sampled from Gaussians, printed CDs are evaluated
// on a precomputed exposure–defocus response surface (bilinear
// interpolation over the orc process-window matrix), and a die is
// counted good when every monitored site stays within its CD spec.
// This converts the process-window pictures into the single number a
// fab manager asked for — and shows what OPC adoption bought in yield.
package yield

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"goopc/internal/orc"
)

// Variation is the assumed process noise.
type Variation struct {
	// FocusSigmaNM is the focus standard deviation (nm).
	FocusSigmaNM float64
	// DoseSigma is the relative dose standard deviation (e.g. 0.02).
	DoseSigma float64
	// Samples is the Monte Carlo sample count.
	Samples int
	// Seed drives the sampler.
	Seed int64
}

// DefaultVariation models a well-run 2001 fab: 120 nm focus sigma,
// 1.5% dose sigma.
func DefaultVariation() Variation {
	return Variation{FocusSigmaNM: 120, DoseSigma: 0.015, Samples: 5000, Seed: 1}
}

// Result is the Monte Carlo outcome.
type Result struct {
	Samples int
	Good    int
	// Yield is Good/Samples.
	Yield float64
	// CPDist holds per-site printed-CD statistics over the good+bad
	// population (NaN CDs from failed prints excluded).
	SiteStats []SiteStat
}

// SiteStat is the CD distribution of one monitor.
type SiteStat struct {
	Name         string
	Mean, Sigma  float64
	FailedPrints int
}

// Estimate runs the Monte Carlo against a precomputed process-window
// surface. The surface must cover the sampled range: the focus grid
// should span roughly +-3 focus sigma and the dose grid +-3 dose
// sigma, or samples will clamp to the boundary (a warning-free,
// conservative treatment).
func Estimate(pw *orc.PWResult, v Variation) (Result, error) {
	if v.Samples < 1 {
		return Result{}, fmt.Errorf("yield: need samples")
	}
	if len(pw.Focuses) < 2 || len(pw.Doses) < 2 {
		return Result{}, fmt.Errorf("yield: surface needs >=2 focuses and doses")
	}
	if !sort.Float64sAreSorted(pw.Focuses) || !sort.Float64sAreSorted(pw.Doses) {
		return Result{}, fmt.Errorf("yield: surface axes must be ascending")
	}
	rng := rand.New(rand.NewSource(v.Seed))
	res := Result{Samples: v.Samples}
	nSites := len(pw.Sites)
	sums := make([]float64, nSites)
	sums2 := make([]float64, nSites)
	counts := make([]int, nSites)
	fails := make([]int, nSites)

	for s := 0; s < v.Samples; s++ {
		focus := rng.NormFloat64() * v.FocusSigmaNM
		dose := 1 + rng.NormFloat64()*v.DoseSigma
		good := true
		for si, site := range pw.Sites {
			cd := interp2(pw, si, focus, dose)
			if math.IsNaN(cd) {
				fails[si]++
				good = false
				continue
			}
			sums[si] += cd
			sums2[si] += cd * cd
			counts[si]++
			if math.Abs(cd-site.TargetCD) > site.TolFrac*site.TargetCD {
				good = false
			}
		}
		if good {
			res.Good++
		}
	}
	res.Yield = float64(res.Good) / float64(res.Samples)
	for si, site := range pw.Sites {
		st := SiteStat{Name: site.Name, FailedPrints: fails[si]}
		if counts[si] > 0 {
			st.Mean = sums[si] / float64(counts[si])
			varr := sums2[si]/float64(counts[si]) - st.Mean*st.Mean
			if varr > 0 {
				st.Sigma = math.Sqrt(varr)
			}
		}
		res.SiteStats = append(res.SiteStats, st)
	}
	return res, nil
}

// interp2 bilinearly interpolates the CD surface of one site, clamping
// outside the grid. NaN cells (failed prints) poison the interpolation,
// correctly propagating "does not print" into the sample.
func interp2(pw *orc.PWResult, site int, focus, dose float64) float64 {
	fi, ft := locate(pw.Focuses, focus)
	di, dt := locate(pw.Doses, dose)
	c00 := pw.CD[site][fi][di]
	c10 := pw.CD[site][fi+1][di]
	c01 := pw.CD[site][fi][di+1]
	c11 := pw.CD[site][fi+1][di+1]
	return c00*(1-ft)*(1-dt) + c10*ft*(1-dt) + c01*(1-ft)*dt + c11*ft*dt
}

// locate finds the cell index and fraction for value v on an ascending
// axis, clamped to the grid.
func locate(axis []float64, v float64) (int, float64) {
	if v <= axis[0] {
		return 0, 0
	}
	last := len(axis) - 1
	if v >= axis[last] {
		return last - 1, 1
	}
	i := sort.SearchFloat64s(axis, v) - 1
	if i < 0 {
		i = 0
	}
	t := (v - axis[i]) / (axis[i+1] - axis[i])
	return i, t
}
