//go:build !unix

package patlib

import "os"

// openLocked on platforms without flock opens for append with no
// advisory lock: single-process safety still holds (one appender
// goroutine per Library), cross-process writers are unguarded.
func openLocked(path string) (*os.File, func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() {}, nil
}
