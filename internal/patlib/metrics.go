package patlib

import "goopc/internal/obs"

// The goopc_patlib_* series (DESIGN.md 5f). Hit/miss/reject counters
// count lookup decisions (one per tile class probed); the per-tile
// accounting — a reused class may cover many tile placements — lives in
// core.TileStats and the per-job RunStats.
var (
	mExactHits = obs.Default().Counter("goopc_patlib_exact_hits_total",
		"tile classes served by an exact pattern-library match")
	mSimilarHits = obs.Default().Counter("goopc_patlib_similarity_hits_total",
		"tile classes served by an orientation-similarity match")
	mHaloRejects = obs.Default().Counter("goopc_patlib_halo_rejections_total",
		"similarity candidates rejected by the halo-validity check (context ring differed)")
	mMisses = obs.Default().Counter("goopc_patlib_misses_total",
		"tile classes that missed both library rungs and were solved")
	mAppends = obs.Default().Counter("goopc_patlib_appends_total",
		"solved tile classes persisted to the pattern library")
	mIncompatible = obs.Default().Counter("goopc_patlib_incompatible_total",
		"sessions refused because the run fingerprint does not match the library")
	mLockDenied = obs.Default().Counter("goopc_patlib_lock_denied_total",
		"writable opens degraded to read-only (another process holds the library lock)")
	mLoadSkipped = obs.Default().Counter("goopc_patlib_load_skipped_total",
		"undecodable store lines skipped at load (torn tail, version skew, corruption)")
	gEntries = obs.Default().Gauge("goopc_patlib_entries",
		"pattern records currently indexed in memory")
	gLoadSeconds = obs.Default().Gauge("goopc_patlib_load_seconds",
		"wall-clock seconds of the most recent library load")
	hAppendSeconds = obs.Default().Histogram("goopc_patlib_append_seconds",
		"seconds per record append (marshal + write on the write-behind goroutine)",
		[]float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5})
)
