package patlib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/patmatch"
)

const testTile geom.Coord = 1000

// testPattern builds an asymmetric tile-class problem in frame coords:
// an L-shaped active polygon, a context stick in the halo ring, and a
// fake "corrected" solution (the active with one edge biased).
func testPattern() (active, context, polys []geom.Polygon) {
	active = []geom.Polygon{{
		{X: 100, Y: 100}, {X: 400, Y: 100}, {X: 400, Y: 200},
		{X: 200, Y: 200}, {X: 200, Y: 500}, {X: 100, Y: 500},
	}}
	context = []geom.Polygon{geom.Rect{X0: -200, Y0: 100, X1: -50, Y1: 300}.Polygon()}
	polys = []geom.Polygon{{
		{X: 96, Y: 96}, {X: 404, Y: 96}, {X: 404, Y: 204},
		{X: 204, Y: 204}, {X: 204, Y: 504}, {X: 96, Y: 504},
	}}
	return
}

func mustOpen(t *testing.T, path string, ro bool) *Library {
	t.Helper()
	l, err := Open(path, ro)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	active, context, polys := testPattern()

	l := mustOpen(t, path, false)
	s := l.Session("fp-A")
	if s == nil {
		t.Fatal("empty library refused the first session")
	}
	s.Append("L3", "k1", testTile, active, context, polys, 1.25, 4)
	// Immediately visible to this and any concurrent session.
	got, rms, iters, ok := s.Lookup("L3", "k1")
	if !ok || rms != 1.25 || iters != 4 || len(got) != 1 {
		t.Fatalf("in-memory lookup: ok=%v rms=%v iters=%v", ok, rms, iters)
	}
	// Level-scoped: the same key at another level misses.
	if _, _, _, ok := s.Lookup("L2", "k1"); ok {
		t.Fatal("lookup crossed levels")
	}
	l.Flush()
	l.Close()

	// Reopen: the record survived the process.
	l2 := mustOpen(t, path, true)
	if l2.Len() != 1 {
		t.Fatalf("reloaded %d records, want 1", l2.Len())
	}
	if l2.Fingerprint() != "fp-A" {
		t.Fatalf("fingerprint %q, want fp-A", l2.Fingerprint())
	}
	s2 := l2.Session("fp-A")
	got2, _, _, ok := s2.Lookup("L3", "k1")
	if !ok {
		t.Fatal("persisted record missed after reload")
	}
	for i := range got[0] {
		if got[0][i] != got2[0][i] {
			t.Fatalf("persisted polys differ at vertex %d", i)
		}
	}
	if s2.Exact.Load() != 1 {
		t.Fatalf("session exact counter %d, want 1", s2.Exact.Load())
	}
}

func TestFingerprintMismatchDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	active, context, polys := testPattern()
	l := mustOpen(t, path, false)
	l.Session("fp-A").Append("L3", "k1", testTile, active, context, polys, 1, 1)
	l.Flush()
	l.Close()

	l2 := mustOpen(t, path, false)
	if s := l2.Session("fp-B"); s != nil {
		t.Fatal("session with mismatched fingerprint was not refused")
	}
	// Nil sessions are inert: every rung misses, appends drop.
	var s *Session
	if _, _, _, ok := s.Lookup("L3", "k1"); ok {
		t.Fatal("nil session returned a hit")
	}
	if _, ok := s.Similar("L3", testTile, active, context); ok {
		t.Fatal("nil session returned a similarity hit")
	}
	s.Append("L3", "k2", testTile, active, context, polys, 1, 1)
	// The matching fingerprint still works on the same Library.
	if l2.Session("fp-A") == nil {
		t.Fatal("matching session refused")
	}
}

func TestVersionSkewDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	os.WriteFile(path, []byte(`{"version":99,"fingerprint":"fp-A"}`+"\n"+`{"level":"L3","key":"k"}`+"\n"), 0o644)
	l := mustOpen(t, path, false)
	if l.Len() != 0 {
		t.Fatalf("version-skewed store indexed %d records, want 0", l.Len())
	}
	if !l.ReadOnly() {
		t.Fatal("version-skewed store must not be appended to")
	}
	s := l.Session("fp-B")
	if s == nil {
		t.Fatal("skewed store should still serve (empty, all-miss) sessions")
	}
	if _, _, _, ok := s.Lookup("L3", "k"); ok {
		t.Fatal("lookup hit in a version-skewed store")
	}
	// Appends are dropped, never written into the incompatible file.
	active, context, polys := testPattern()
	s.Append("L3", "k2", testTile, active, context, polys, 1, 1)
	l.Flush()
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "k2") {
		t.Fatal("append leaked into a version-skewed store file")
	}
}

func TestTruncatedStoreLoadsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	active, context, polys := testPattern()
	l := mustOpen(t, path, false)
	s := l.Session("fp-A")
	s.Append("L3", "k1", testTile, active, context, polys, 1, 1)
	s.Append("L3", "k2", testTile, active, nil, polys, 2, 2)
	l.Flush()
	l.Close()

	// Tear the final line, as a crash mid-append would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, path, true)
	if l2.Len() != 1 {
		t.Fatalf("torn store indexed %d records, want the intact prefix of 1", l2.Len())
	}
	s2 := l2.Session("fp-A")
	if _, _, _, ok := s2.Lookup("L3", "k1"); !ok {
		t.Fatal("intact record lost")
	}
	if _, _, _, ok := s2.Lookup("L3", "k2"); ok {
		t.Fatal("torn record served")
	}
}

func TestEmptyAndMissingLibrary(t *testing.T) {
	dir := t.TempDir()
	// Missing file, read-only: everything misses, nothing is created.
	l := mustOpen(t, filepath.Join(dir, "missing.jsonl"), true)
	s := l.Session("fp")
	active, context, _ := testPattern()
	if _, _, _, ok := s.Lookup("L3", "k"); ok {
		t.Fatal("hit in a missing library")
	}
	if _, ok := s.Similar("L3", testTile, active, context); ok {
		t.Fatal("similarity hit in a missing library")
	}
	if _, err := os.Stat(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("read-only open created the store file")
	}
	// Zero-byte file: same story.
	empty := filepath.Join(dir, "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	l2 := mustOpen(t, empty, false)
	if s2 := l2.Session("fp"); s2 == nil {
		t.Fatal("empty file refused a session")
	}
}

func TestSimilarityOrientationAndHalo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	active, context, polys := testPattern()
	frame := geom.Rect{X0: 0, Y0: 0, X1: testTile, Y1: testTile}

	l := mustOpen(t, path, false)
	s := l.Session("fp-A")
	s.Append("L3", "k1", testTile, active, context, polys, 1.5, 3)

	for o := geom.R90; o <= geom.MX270; o++ {
		rotA := patmatch.ApplyFrame(active, frame, o)
		rotC := patmatch.ApplyFrame(context, frame, o)
		res, ok := s.Similar("L3", testTile, rotA, rotC)
		if !ok {
			t.Fatalf("%v: rotated candidate missed", o)
		}
		if res.RMS != 1.5 || res.Iters != 3 {
			t.Fatalf("%v: wrong record surfaced", o)
		}
		// The returned solution is the stored one under the same
		// orientation (as a region; polygon order is not contractual).
		want := patmatch.ApplyFrame(polys, frame, o)
		if !geom.RegionFromPolygons(res.Polys...).Xor(geom.RegionFromPolygons(want...)).Empty() {
			t.Fatalf("%v: transformed solution differs", o)
		}
		// Level and tile scoping hold on the similarity rung too.
		if _, ok := s.Similar("L2", testTile, rotA, rotC); ok {
			t.Fatalf("%v: similarity crossed levels", o)
		}
		if _, ok := s.Similar("L3", testTile+8, rotA, rotC); ok {
			t.Fatalf("%v: similarity crossed tile sizes", o)
		}
	}

	// Halo-validity: same active geometry, different context ring.
	rotA := patmatch.ApplyFrame(active, frame, geom.R90)
	otherCtx := []geom.Polygon{geom.Rect{X0: -300, Y0: 600, X1: -80, Y1: 900}.Polygon()}
	before := s.HaloRejects.Load()
	if _, ok := s.Similar("L3", testTile, rotA, otherCtx); ok {
		t.Fatal("similarity hit despite a mismatched context ring")
	}
	if s.HaloRejects.Load() != before+1 {
		t.Fatalf("halo rejection not counted: %d -> %d", before, s.HaloRejects.Load())
	}
}

// TestConcurrentAppend hammers one library from many goroutines under
// the race detector: concurrent appends of distinct and duplicate keys,
// interleaved with lookups. The single-writer appender must serialize
// the file, and every record must survive a reload.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	l := mustOpen(t, path, false)
	active, context, polys := testPattern()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := l.Session("fp-A")
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", i) // all workers collide on every key
				s.Append("L3", key, testTile, active, context, polys, float64(i), i)
				if _, _, _, ok := s.Lookup("L3", key); !ok {
					t.Errorf("worker %d: appended key %s missed", w, key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != perWorker {
		t.Fatalf("indexed %d records, want %d (duplicates collapsed)", l.Len(), perWorker)
	}
	l.Flush()
	l.Close()

	l2 := mustOpen(t, path, true)
	if l2.Len() != perWorker {
		t.Fatalf("reloaded %d records, want %d", l2.Len(), perWorker)
	}
	// The file must be line-clean JSON throughout (no torn interleaving).
	data, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != perWorker+1 {
		t.Fatalf("file has %d lines, want header + %d records", len(lines), perWorker)
	}
	for i, ln := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
	}
}

// TestCrossProcessLockDegradesToReadOnly simulates the second daemon on
// one library file: the loser of the flock race serves lookups but
// drops appends.
func TestCrossProcessLockDegradesToReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	active, context, polys := testPattern()
	l1 := mustOpen(t, path, false)
	l1.Session("fp-A").Append("L3", "k1", testTile, active, context, polys, 1, 1)
	l1.Flush()

	l2 := mustOpen(t, path, false) // lock already held by l1
	if !l2.ReadOnly() {
		t.Skip("platform without flock support; cross-process guard not available")
	}
	s2 := l2.Session("fp-A")
	if _, _, _, ok := s2.Lookup("L3", "k1"); !ok {
		t.Fatal("read-only loser lost lookups too")
	}
	s2.Append("L3", "k2", testTile, active, context, polys, 1, 1)
	l2.Flush()
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "k2") {
		t.Fatal("read-only loser wrote to the locked file")
	}
}
