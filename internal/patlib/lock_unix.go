//go:build unix

package patlib

import (
	"os"
	"syscall"
)

// openLocked opens path for appending and takes a non-blocking
// exclusive advisory lock on it. A second process trying to write the
// same library loses the race and (in Open) degrades to read-only;
// readers never take the lock, so lookups are unaffected.
func openLocked(path string) (*os.File, func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, nil, err
	}
	unlock := func() { syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }
	return f, unlock, nil
}
