// Package patlib is the persistent cross-run correction cache: a
// content-addressed store of already-solved tile-class patterns shared
// across jobs and across process restarts (the AdaOPC idea — see
// DESIGN.md 5f). The tiled scheduler consults it before spending engine
// work: an exact hit (same canonical tile key the in-run dedup
// computes) returns the stored solution bit-identically; a similarity
// hit (same geometry under one of the eight layout orientations,
// accepted only after the halo-validity check that the stored context
// ring also matches) returns the stored solution carried through the
// orientation transform. Every solved class is appended back, so the
// library grows under live traffic and steady-state correction cost
// approaches lookup cost.
//
// On disk the library is a JSONL file: a header line carrying the
// format version and the flow fingerprint, then one record per line in
// the checkpoint serialization (polys/rms/iters at the canonical frame
// origin) plus the pattern geometry. Records are appended by a single
// write-behind goroutine through an O_APPEND descriptor guarded by an
// advisory file lock, so concurrent jobs in one daemon and concurrent
// daemons on one file are both safe; a reader tolerates a torn final
// line (crash mid-append) by loading the intact prefix. Every
// degradation path — missing file, version skew, fingerprint mismatch,
// truncation — ends in cache-miss-and-solve, never in a wrong result
// or a failed run.
package patlib

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"goopc/internal/geom"
	"goopc/internal/patmatch"
)

// storeVersion guards the JSONL format; other versions load as empty.
const storeVersion = 1

// appendQueue bounds the write-behind channel: producers (scheduler
// workers) block once this many records are in flight, which is the
// backpressure that keeps a slow disk from growing memory unboundedly.
const appendQueue = 256

// header is the first line of the store file.
type header struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// Record is one stored corrected tile-class pattern. Geometry is in
// frame coordinates (tile core translated to the origin), exactly the
// canonical placement the checkpoint layer uses, so Polys/RMS/Iters
// are a core.CheckpointEntry by another name. Active and Context carry
// the problem geometry so the similarity index can be rebuilt at load
// time; Key is the scheduler's exact canonical class-key hash and
// Level/Tile scope it (the same geometry corrects differently at L2
// and L3, or under a different tile size).
type Record struct {
	Level   string         `json:"level"`
	Key     string         `json:"key"`
	Tile    geom.Coord     `json:"tile"`
	Active  []geom.Polygon `json:"active"`
	Context []geom.Polygon `json:"context,omitempty"`
	Polys   []geom.Polygon `json:"polys"`
	RMS     float64        `json:"rms"`
	Iters   int            `json:"iters"`
}

// simRef points one orientation variant of one record into the
// similarity index.
type simRef struct {
	rec    int
	orient geom.Orient
}

// Library is the in-memory face of one store file: an exact index by
// (level, key), a similarity index by oriented active-geometry hash,
// and a single-writer append pipeline. One Library is safe for
// concurrent use by many sessions (jobs).
type Library struct {
	path     string
	readOnly bool

	mu    sync.RWMutex
	fp    string // claimed fingerprint ("" until the first session)
	recs  []*Record
	geoms []patmatch.TileGeometry
	byKey map[string]int
	bySim map[uint64][]simRef
	sigs  map[uint64]bool // coarse-signature prefilter

	appendCh chan *Record
	flushCh  chan chan struct{}
	done     chan struct{}
	exited   chan struct{} // closed when the appender goroutine returns
	wf       *os.File // O_APPEND descriptor; nil until first append
	unlock   func()   // releases the advisory lock
	wroteHdr bool
	werr     error // first write error; appends stop after it

	closed atomic.Bool
}

// Open loads (or prepares to create) the library at path. A missing
// file is an empty library; an unreadable, version-skewed or torn file
// degrades to the loadable prefix (possibly empty) rather than
// failing — the caller always gets a usable Library. When readOnly is
// false the file is advisory-locked for appends; losing the lock race
// to another process degrades this instance to read-only.
func Open(path string, readOnly bool) (*Library, error) {
	l := &Library{
		path:     path,
		readOnly: readOnly,
		byKey:    map[string]int{},
		bySim:    map[uint64][]simRef{},
		sigs:     map[uint64]bool{},
		appendCh: make(chan *Record, appendQueue),
		flushCh:  make(chan chan struct{}),
		done:     make(chan struct{}),
		exited:   make(chan struct{}),
	}
	t0 := time.Now()
	if err := l.load(); err != nil {
		return nil, err
	}
	gLoadSeconds.Set(time.Since(t0).Seconds())
	gEntries.Set(float64(len(l.recs)))
	if !l.readOnly {
		f, unlock, err := openLocked(path)
		if err != nil {
			// Another process holds the library for writing (or the
			// file is not writable): serve lookups, drop appends.
			mLockDenied.Inc()
			l.readOnly = true
		} else {
			l.wf, l.unlock = f, unlock
			// An existing non-empty file already has its header.
			l.wroteHdr = len(l.recs) > 0 || l.fp != ""
		}
	}
	go l.appender()
	return l, nil
}

// load reads the store file into the in-memory indexes. Any undecodable
// line ends the load with the intact prefix kept: the only writer
// appends whole lines, so a torn line is a crash artifact confined to
// the tail.
func (l *Library) load() error {
	f, err := os.Open(l.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("patlib: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	if !sc.Scan() {
		return nil // empty file: empty library
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Version != storeVersion {
		// Version skew or a foreign file: refuse to index or append to
		// it, but do not fail the caller — everything just misses.
		mLoadSkipped.Inc()
		l.readOnly = true
		return nil
	}
	l.fp = h.Fingerprint
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			mLoadSkipped.Inc()
			break
		}
		l.insert(&r)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		mLoadSkipped.Inc()
	}
	return nil
}

// insert indexes one record (caller holds mu or is the loader).
func (l *Library) insert(r *Record) bool {
	mapKey := r.Level + "/" + r.Key
	if _, dup := l.byKey[mapKey]; dup {
		return false
	}
	frame := geom.Rect{X0: 0, Y0: 0, X1: r.Tile, Y1: r.Tile}
	tg := patmatch.NewTileGeometry(r.Active, r.Context, frame)
	idx := len(l.recs)
	l.recs = append(l.recs, r)
	l.geoms = append(l.geoms, tg)
	l.byKey[mapKey] = idx
	for _, v := range tg.Variants() {
		l.bySim[v.ActiveHash] = append(l.bySim[v.ActiveHash], simRef{rec: idx, orient: v.Orient})
	}
	l.sigs[tg.Sig()] = true
	return true
}

// Len returns the number of indexed records.
func (l *Library) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.recs)
}

// ReadOnly reports whether appends are disabled (by configuration, by
// version skew, or by losing the cross-process lock).
func (l *Library) ReadOnly() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.readOnly
}

// Fingerprint returns the flow fingerprint the library is bound to
// ("" while empty and unclaimed).
func (l *Library) Fingerprint() string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.fp
}

// appender is the single writer: it drains the append channel onto the
// O_APPEND descriptor, writing the header first if the file is new.
// Whole-line writes through one descriptor are what keep concurrent
// jobs (and the torn-tail recovery story) simple.
func (l *Library) appender() {
	defer close(l.exited)
	drain := func() {
		for {
			select {
			case r := <-l.appendCh:
				l.writeRecord(r)
			default:
				return
			}
		}
	}
	for {
		select {
		case r := <-l.appendCh:
			l.writeRecord(r)
		case ack := <-l.flushCh:
			drain()
			if l.wf != nil {
				l.wf.Sync()
			}
			close(ack)
		case <-l.done:
			drain()
			if l.wf != nil {
				l.wf.Sync()
				l.wf.Close()
			}
			if l.unlock != nil {
				l.unlock()
			}
			return
		}
	}
}

// writeRecord appends one record line (appender goroutine only).
func (l *Library) writeRecord(r *Record) {
	if l.wf == nil || l.werr != nil {
		return
	}
	t0 := time.Now()
	if !l.wroteHdr {
		hdr, err := json.Marshal(header{Version: storeVersion, Fingerprint: l.Fingerprint()})
		if err == nil {
			_, err = l.wf.Write(append(hdr, '\n'))
		}
		if err != nil {
			l.werr = err
			return
		}
		l.wroteHdr = true
	}
	data, err := json.Marshal(r)
	if err == nil {
		_, err = l.wf.Write(append(data, '\n'))
	}
	if err != nil {
		l.werr = err
		return
	}
	mAppends.Inc()
	hAppendSeconds.Observe(time.Since(t0).Seconds())
}

// Flush blocks until every record queued so far is on disk — test and
// shutdown hygiene, not needed on the hot path.
func (l *Library) Flush() {
	if l.closed.Load() {
		return
	}
	ack := make(chan struct{})
	select {
	case l.flushCh <- ack:
		<-ack
	case <-l.done:
	}
}

// Close drains the append queue, syncs and releases the file, blocking
// until everything queued is on disk. Sessions must not be used after
// Close; lookups on a closed library miss.
func (l *Library) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		<-l.exited
		return nil
	}
	close(l.done)
	<-l.exited
	return nil
}

// Session binds one correction run to the library. The run's flow
// fingerprint must match the library's: an empty library is claimed by
// the first session's fingerprint, a mismatch yields a nil session
// (nil-safe: every method on a nil session misses), which is the
// degrade-to-solve path for incompatible optics/rules/flow settings.
type Session struct {
	lib *Library

	// Per-run accounting, folded into core.TileStats at run end.
	Exact       atomic.Int64
	SimHits     atomic.Int64
	HaloRejects atomic.Int64
	Misses      atomic.Int64
	Appends     atomic.Int64
}

// Session returns a run handle for the fingerprint, or nil when the
// library is bound to a different one.
func (l *Library) Session(fingerprint string) *Session {
	if l == nil || fingerprint == "" || l.closed.Load() {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fp == "" {
		l.fp = fingerprint
	}
	if l.fp != fingerprint {
		mIncompatible.Inc()
		return nil
	}
	return &Session{lib: l}
}

// Lookup is the exact rung: the scheduler's canonical class-key hash,
// scoped by level. A hit returns the stored frame-origin solution —
// bit-identical reuse, the same contract as a checkpoint restore.
func (s *Session) Lookup(level, key string) (polys []geom.Polygon, rms float64, iters int, ok bool) {
	if s == nil || key == "" {
		return nil, 0, 0, false
	}
	l := s.lib
	l.mu.RLock()
	idx, hit := l.byKey[level+"/"+key]
	var r *Record
	if hit {
		r = l.recs[idx]
	}
	l.mu.RUnlock()
	if !hit {
		return nil, 0, 0, false
	}
	s.Exact.Add(1)
	mExactHits.Inc()
	return r.Polys, r.RMS, r.Iters, true
}

// SimResult is a similarity hit: the stored solution carried through
// the matching orientation, plus its provenance for observability.
type SimResult struct {
	Polys  []geom.Polygon
	RMS    float64
	Iters  int
	Orient geom.Orient
}

// Similar is the second rung, tried after an exact miss: match the
// candidate tile (active + context in frame coordinates) against every
// stored record under the eight frame-preserving orientations. The
// active geometry must match exactly under the orientation (hash probe,
// then full rect comparison so a 64-bit collision cannot fabricate a
// hit), and then the halo-validity check requires the stored context
// ring to match the candidate's the same way — a pattern solved against
// different surroundings is a different correction problem (the DAMO
// discipline), counted as a halo rejection and fallen through to a full
// solve. A miss on both rungs counts once, here.
func (s *Session) Similar(level string, tile geom.Coord, active, context []geom.Polygon) (SimResult, bool) {
	if s == nil {
		return SimResult{}, false
	}
	frame := geom.Rect{X0: 0, Y0: 0, X1: tile, Y1: tile}
	cand := patmatch.NewTileGeometry(active, context, frame)
	l := s.lib
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.sigs[cand.Sig()] {
		// Coarse prefilter: no stored record shares even the
		// orientation-invariant signature.
		s.Misses.Add(1)
		mMisses.Inc()
		return SimResult{}, false
	}
	rejected := false
	for _, ref := range l.bySim[cand.ActiveHash()] {
		r := l.recs[ref.rec]
		if r.Level != level || r.Tile != tile {
			continue
		}
		a, c := l.geoms[ref.rec].OrientRects(ref.orient)
		if !patmatch.EqualRects(a, cand.Active) {
			continue // hash collision, not a match
		}
		if !patmatch.EqualRects(c, cand.Context) {
			// Halo-validity failure: same pattern, different
			// surroundings. Keep scanning — another record (or another
			// orientation) may satisfy both.
			rejected = true
			continue
		}
		s.SimHits.Add(1)
		mSimilarHits.Inc()
		return SimResult{
			Polys:  patmatch.ApplyFrame(r.Polys, frame, ref.orient),
			RMS:    r.RMS,
			Iters:  r.Iters,
			Orient: ref.orient,
		}, true
	}
	if rejected {
		s.HaloRejects.Add(1)
		mHaloRejects.Inc()
	}
	s.Misses.Add(1)
	mMisses.Inc()
	return SimResult{}, false
}

// Append stores a freshly solved class: indexed immediately (the next
// lookup in this or any concurrent job hits it) and queued to the
// write-behind appender for persistence. Geometry must be in frame
// coordinates. Duplicate keys and read-only libraries are no-ops.
func (s *Session) Append(level, key string, tile geom.Coord, active, context, polys []geom.Polygon, rms float64, iters int) {
	if s == nil || key == "" {
		return
	}
	l := s.lib
	if l.closed.Load() {
		return
	}
	r := &Record{
		Level: level, Key: key, Tile: tile,
		Active: active, Context: context,
		Polys: polys, RMS: rms, Iters: iters,
	}
	l.mu.Lock()
	if l.readOnly {
		l.mu.Unlock()
		return
	}
	inserted := l.insert(r)
	n := len(l.recs)
	l.mu.Unlock()
	if !inserted {
		return
	}
	s.Appends.Add(1)
	gEntries.Set(float64(n))
	select {
	case l.appendCh <- r:
	case <-l.done:
	}
}
