package patmatch

import (
	"testing"

	"goopc/internal/geom"
)

// hotspotPair builds the facing-line-end configuration at an offset.
func hotspotPair(off geom.Point) []geom.Polygon {
	return []geom.Polygon{
		geom.R(off.X-90, off.Y-2000, off.X+90, off.Y-100).Polygon(),
		geom.R(off.X-90, off.Y+100, off.X+90, off.Y+2000).Polygon(),
	}
}

func TestCaptureAndSelfMatch(t *testing.T) {
	polys := hotspotPair(geom.Pt(0, 0))
	anchor, ok := NearestVertex(polys, geom.Pt(0, 0))
	if !ok {
		t.Fatal("no vertex")
	}
	pat := Capture(polys, anchor, 600, "facing-tips")
	if pat.Empty() {
		t.Fatal("empty capture")
	}
	lib := NewLibrary(600)
	if err := lib.Add(pat); err != nil {
		t.Fatal(err)
	}
	matches := lib.Scan(polys)
	if len(matches) == 0 {
		t.Fatal("pattern does not match its own source")
	}
}

func TestScanFindsTranslatedCopies(t *testing.T) {
	src := hotspotPair(geom.Pt(0, 0))
	anchor, _ := NearestVertex(src, geom.Pt(0, 0))
	pat := Capture(src, anchor, 600, "facing-tips")
	lib := NewLibrary(600)
	if err := lib.Add(pat); err != nil {
		t.Fatal(err)
	}
	// A layout with two copies at different places plus unrelated
	// geometry.
	var target []geom.Polygon
	target = append(target, hotspotPair(geom.Pt(10000, 5000))...)
	target = append(target, hotspotPair(geom.Pt(30000, -2000))...)
	target = append(target, geom.R(50000, 0, 50180, 4000).Polygon()) // plain line: no match
	matches := lib.Scan(target)
	locs := map[geom.Point]bool{}
	for _, m := range matches {
		locs[m.At] = true
	}
	if len(matches) < 2 {
		t.Fatalf("found %d matches, want copies at both offsets: %v", len(matches), matches)
	}
	// No match may anchor on the plain line.
	for _, m := range matches {
		if m.At.X >= 50000 {
			t.Errorf("false positive at %v", m.At)
		}
	}
}

func TestScanOrientationInvariance(t *testing.T) {
	src := hotspotPair(geom.Pt(0, 0))
	anchor, _ := NearestVertex(src, geom.Pt(0, 0))
	pat := Capture(src, anchor, 600, "facing-tips")
	lib := NewLibrary(600)
	if err := lib.Add(pat); err != nil {
		t.Fatal(err)
	}
	// Rotate the configuration 90 degrees.
	x := geom.Xform{Orient: geom.R90, Mag: 1, Offset: geom.Pt(20000, 20000)}
	var rot []geom.Polygon
	for _, p := range src {
		rot = append(rot, x.ApplyPolygon(p))
	}
	if got := lib.Scan(rot); len(got) == 0 {
		t.Error("rotated copy not found")
	}
	// Mirrored.
	mx := geom.Xform{Orient: geom.MX, Mag: 1, Offset: geom.Pt(-5000, 8000)}
	var mir []geom.Polygon
	for _, p := range src {
		mir = append(mir, mx.ApplyPolygon(p))
	}
	if got := lib.Scan(mir); len(got) == 0 {
		t.Error("mirrored copy not found")
	}
}

func TestScanDimensionSensitivity(t *testing.T) {
	// A 260 nm gap is a different pattern than the captured 200 nm gap:
	// exact matching must not fire.
	src := hotspotPair(geom.Pt(0, 0))
	anchor, _ := NearestVertex(src, geom.Pt(0, 0))
	pat := Capture(src, anchor, 600, "facing-tips")
	lib := NewLibrary(600)
	if err := lib.Add(pat); err != nil {
		t.Fatal(err)
	}
	other := []geom.Polygon{
		geom.R(-90, -2000, 90, -130).Polygon(),
		geom.R(-90, 130, 90, 2000).Polygon(),
	}
	if got := lib.Scan(other); len(got) != 0 {
		t.Errorf("different gap matched: %v", got)
	}
}

func TestLibraryValidation(t *testing.T) {
	lib := NewLibrary(600)
	if err := lib.Add(Pattern{Radius: 400}); err == nil {
		t.Error("radius mismatch should fail")
	}
	if err := lib.Add(Pattern{Radius: 600}); err == nil {
		t.Error("empty pattern should fail")
	}
	if lib.Len() != 0 {
		t.Error("failed adds must not count")
	}
	if got := lib.Scan(hotspotPair(geom.Pt(0, 0))); got != nil {
		t.Error("empty library should match nothing")
	}
}

func TestVariantsDedup(t *testing.T) {
	// A symmetric square pattern has fewer than 8 distinct variants.
	polys := []geom.Polygon{geom.R(-100, -100, 100, 100).Polygon()}
	pat := Capture(polys, geom.Pt(100, 100), 400, "sq")
	if n := len(pat.Variants()); n >= 8 {
		t.Errorf("symmetric pattern variants = %d, expected dedup", n)
	}
	// An asymmetric one has several.
	asym := []geom.Polygon{
		geom.R(-100, -100, 100, 100).Polygon(),
		geom.R(150, -30, 400, 30).Polygon(),
	}
	pat2 := Capture(asym, geom.Pt(100, 100), 400, "as")
	if n := len(pat2.Variants()); n < 4 {
		t.Errorf("asymmetric variants = %d", n)
	}
}

func TestNearestVertex(t *testing.T) {
	polys := []geom.Polygon{geom.R(0, 0, 100, 100).Polygon()}
	v, ok := NearestVertex(polys, geom.Pt(90, 120))
	if !ok || v != geom.Pt(100, 100) {
		t.Errorf("nearest = %v ok=%v", v, ok)
	}
	if _, ok := NearestVertex(nil, geom.Pt(0, 0)); ok {
		t.Error("empty input should report not found")
	}
}
