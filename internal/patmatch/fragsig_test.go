package patmatch

import (
	"sort"
	"testing"

	"goopc/internal/geom"
)

// fragSigKeys fragments p and returns the sorted signature keys of all
// fragments against the environment env.
func fragSigKeys(t *testing.T, p geom.Polygon, env []geom.Polygon, radius geom.Coord) []uint64 {
	t.Helper()
	frags := geom.FragmentPolygon(p, 0, geom.DefaultFragmentSpec())
	if len(frags) == 0 {
		t.Fatal("no fragments")
	}
	keys := make([]uint64, 0, len(frags))
	for _, f := range frags {
		s := CaptureFragment(f, env, radius)
		if s.Empty() {
			t.Fatalf("empty capture at %v", f.Edge.Mid())
		}
		keys = append(keys, s.Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TestFragSigD4Invariance checks the prior key's central property: a
// layout transformed by any of the eight orientations (plus an
// arbitrary translation) yields the identical multiset of fragment
// signatures. Edge lengths are chosen so dissection is symmetric under
// edge reversal (runs divide evenly), making fragment midpoints map
// exactly through the transform.
func TestFragSigD4Invariance(t *testing.T) {
	// CCW L-shape (800x800 with a 400x400 notch) plus a context bar in
	// optical range of its right edge, so signatures see multi-polygon
	// environments too.
	main := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(800, 0), geom.Pt(800, 400),
		geom.Pt(400, 400), geom.Pt(400, 800), geom.Pt(0, 800),
	}
	bar := geom.Polygon{
		geom.Pt(900, 0), geom.Pt(1000, 0), geom.Pt(1000, 800), geom.Pt(900, 800),
	}
	const radius = 400
	want := fragSigKeys(t, main, []geom.Polygon{main, bar}, radius)

	for o := geom.R0; o <= geom.MX270; o++ {
		x := geom.Xform{Orient: o, Mag: 1, Offset: geom.Pt(12340, -9860)}
		tm := x.ApplyPolygon(main)
		tb := x.ApplyPolygon(bar)
		got := fragSigKeys(t, tm, []geom.Polygon{tm, tb}, radius)
		if len(got) != len(want) {
			t.Fatalf("%v: %d signatures, want %d", o, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: signature multiset differs at %d: %x != %x", o, i, got[i], want[i])
			}
		}
	}
}

// TestFragSigDistinguishesGeometry checks that different neighborhoods
// produce different signatures: an isolated line fragment vs. the same
// fragment with a dense neighbor.
func TestFragSigDistinguishesGeometry(t *testing.T) {
	line := geom.Polygon{geom.Pt(0, 0), geom.Pt(180, 0), geom.Pt(180, 2000), geom.Pt(0, 2000)}
	neighbor := geom.Polygon{geom.Pt(360, 0), geom.Pt(540, 0), geom.Pt(540, 2000), geom.Pt(360, 2000)}
	frags := geom.FragmentPolygon(line, 0, geom.DefaultFragmentSpec())
	var run geom.Fragment
	found := false
	for _, f := range frags {
		if f.Kind == geom.RunFragment && f.Edge.Dir == geom.North {
			run, found = f, true
			break
		}
	}
	if !found {
		t.Fatal("no vertical run fragment")
	}
	iso := CaptureFragment(run, []geom.Polygon{line}, 600)
	dense := CaptureFragment(run, []geom.Polygon{line, neighbor}, 600)
	if iso.Key() == dense.Key() {
		t.Fatal("iso and dense environments share a key")
	}
	if iso.SameGeometry(dense) {
		t.Fatal("iso and dense environments report same geometry")
	}
}

// TestFragSigCollisionSafety checks the exact-rects backstop: a forged
// key collision between distinct geometries must still fail the
// SameGeometry verification that gates every prediction, so a 64-bit
// collision can degrade to "no prediction" but never to a wrong bias.
func TestFragSigCollisionSafety(t *testing.T) {
	a := FragSig{Kind: 0, Len: 200, Radius: 400,
		Rects: []geom.Rect{geom.R(0, -200, 40, 200)}}
	a.key = a.hash()
	b := FragSig{Kind: 0, Len: 200, Radius: 400,
		Rects: []geom.Rect{geom.R(0, -200, 40, 200), geom.R(200, -200, 260, 200)}}
	// Forge the collision: same key, different geometry.
	b.key = a.key
	if a.Key() != b.Key() {
		t.Fatal("forged collision did not take")
	}
	if a.SameGeometry(b) || b.SameGeometry(a) {
		t.Fatal("SameGeometry accepted distinct rect sets under a key collision")
	}
	if !a.SameGeometry(a) {
		t.Fatal("SameGeometry rejected identical signature")
	}
}

// TestNormalOrients checks that each outward normal has exactly two
// orientations mapping it to +X and that they differ by a mirror.
func TestNormalOrients(t *testing.T) {
	for _, d := range []geom.Dir{geom.East, geom.North, geom.West, geom.South} {
		os := normalOrients(d.Normal())
		if os[0] == os[1] {
			t.Fatalf("%v: degenerate orientation pair %v", d, os)
		}
		for _, o := range os {
			got := (geom.Xform{Orient: o, Mag: 1}).Apply(d.Normal())
			if got != geom.Pt(1, 0) {
				t.Fatalf("%v: orient %v maps normal to %v, want (1,0)", d, o, got)
			}
		}
		if os[0].Mirrored() == os[1].Mirrored() {
			t.Fatalf("%v: pair %v does not differ by a mirror", d, os)
		}
	}
}
