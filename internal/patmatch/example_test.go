package patmatch_test

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/patmatch"
)

func Example() {
	// Capture a facing-tips configuration once...
	hotspot := []geom.Polygon{
		geom.R(-90, -2000, 90, -100).Polygon(),
		geom.R(-90, 100, 90, 2000).Polygon(),
	}
	anchor, _ := patmatch.NearestVertex(hotspot, geom.Pt(0, 0))
	pat := patmatch.Capture(hotspot, anchor, 600, "facing-tips")

	lib := patmatch.NewLibrary(600)
	_ = lib.Add(pat)

	// ...and find it, rotated, in a new design without any simulation.
	rot := geom.Xform{Orient: geom.R90, Mag: 1, Offset: geom.Pt(30000, 10000)}
	var design []geom.Polygon
	for _, p := range hotspot {
		design = append(design, rot.ApplyPolygon(p))
	}
	design = append(design, geom.R(0, 0, 180, 4000).Polygon()) // innocuous

	matches := lib.Scan(design)
	fmt.Println("matches:", len(matches) > 0)
	for _, m := range matches[:1] {
		fmt.Println("pattern:", m.Name)
	}
	// Output:
	// matches: true
	// pattern: facing-tips
}
