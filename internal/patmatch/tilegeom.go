package patmatch

import (
	"hash/fnv"

	"goopc/internal/geom"
)

// Tile-geometry signatures for the cross-run pattern library. A tile
// class (active geometry + halo context, expressed in frame coordinates
// with the tile core at the origin) is reduced to a canonical rectangle
// decomposition, a coarse orientation-invariant signature for cheap
// prefiltering, and eight orientation variants for similarity matching:
// a candidate tile matches a stored one when some frame-preserving
// orientation maps the stored geometry exactly onto the candidate's.
//
// The frame anchor is what makes a match sound: the transform maps the
// tile core square onto itself, so a matched pair agrees on everything
// the correction engine sees — active geometry, context ring, freeze
// boundary and simulation window — not merely on the shapes in
// isolation. Two tiles whose geometry coincides only after sliding it
// relative to the core boundary are different correction problems and
// never match.

// TileGeometry is the canonical form of one tile class: the frame (the
// tile core translated to the origin) plus the rectangle decompositions
// of the active and context geometry in frame coordinates. Rectangle
// decomposition makes the form insensitive to polygon order, vertex
// order and winding — strictly coarser than the scheduler's exact
// canonical byte key, which is what lets it catch reuse the exact layer
// misses.
type TileGeometry struct {
	Frame   geom.Rect
	Active  []geom.Rect
	Context []geom.Rect
}

// NewTileGeometry canonicalizes a tile class. active and context are in
// absolute coordinates; core is the tile core rectangle (the function
// translates everything so the core lands at the origin). The core must
// be square — the scheduler's tiles always are — so every orientation
// maps the frame onto itself.
func NewTileGeometry(active, context []geom.Polygon, core geom.Rect) TileGeometry {
	off := geom.Pt(-core.X0, -core.Y0)
	return TileGeometry{
		Frame:   core.Translate(off),
		Active:  canonical(geom.RegionFromPolygons(active...).Translate(off).Rects()),
		Context: canonical(geom.RegionFromPolygons(context...).Translate(off).Rects()),
	}
}

// ActiveHash and ContextHash are the identity-orientation hashes — what
// a candidate tile offers to the similarity index.
func (tg TileGeometry) ActiveHash() uint64  { return hashRects(tg.Active) }
func (tg TileGeometry) ContextHash() uint64 { return hashRects(tg.Context) }

// Sig is the coarse orientation-invariant signature used to prefilter
// similarity candidates: the active rectangle count, area, and unordered
// bounding-box dimensions are all preserved by the eight orientations,
// so unequal signatures prove two actives cannot match under any of
// them. Context deliberately stays out of the signature — halo validity
// is checked (and counted) separately, after the active match.
func (tg TileGeometry) Sig() uint64 {
	var aArea int64
	for _, r := range tg.Active {
		aArea += int64(r.W()) * int64(r.H())
	}
	var w, h geom.Coord
	if len(tg.Active) > 0 {
		bb := tg.Active[0]
		for _, r := range tg.Active[1:] {
			bb = bb.Union(r)
		}
		w, h = bb.W(), bb.H()
		if w > h {
			w, h = h, w
		}
	}
	hs := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		hs.Write(buf[:])
	}
	put(int64(len(tg.Active)))
	put(aArea)
	put(int64(w))
	put(int64(h))
	put(int64(tg.Frame.W()))
	return hs.Sum64()
}

// FrameXform returns the transform for orientation o that maps the
// frame square onto itself: orient about the origin, then translate so
// the transformed frame's min corner returns to the frame's min corner.
// For the canonical frame (min corner at the origin) this is exactly
// the D4 symmetry of the tile.
func FrameXform(frame geom.Rect, o geom.Orient) geom.Xform {
	x := geom.Xform{Orient: o, Mag: 1}
	moved := x.ApplyRect(frame)
	return geom.Xform{Orient: o, Mag: 1, Offset: geom.Pt(frame.X0-moved.X0, frame.Y0-moved.Y0)}
}

// TileVariant is one orientation image of a stored tile: the transform
// that produced it and the hashes of the transformed active and context
// rect sets. The similarity index stores every variant of every record;
// a candidate's identity hash hitting a variant means the variant's
// orientation maps the record onto the candidate.
type TileVariant struct {
	Orient      geom.Orient
	ActiveHash  uint64
	ContextHash uint64
}

// Variants returns the tile geometry's images under the eight
// orientations, deduplicated by (active, context) hash pair — a
// symmetric tile yields fewer than eight.
func (tg TileGeometry) Variants() []TileVariant {
	out := make([]TileVariant, 0, 8)
	type pair struct{ a, c uint64 }
	seen := map[pair]bool{}
	for o := geom.R0; o <= geom.MX270; o++ {
		a, c := tg.OrientRects(o)
		v := TileVariant{Orient: o, ActiveHash: hashRects(a), ContextHash: hashRects(c)}
		if seen[pair{v.ActiveHash, v.ContextHash}] {
			continue
		}
		seen[pair{v.ActiveHash, v.ContextHash}] = true
		out = append(out, v)
	}
	return out
}

// OrientRects returns the canonical active and context rect sets under
// the frame-preserving transform for o. The transformed rects are
// re-normalized through a Region pass: the sweep's slab decomposition
// is not rotation-covariant, so transforming the rects one by one would
// give a partition of the right area in the wrong pieces.
func (tg TileGeometry) OrientRects(o geom.Orient) (active, context []geom.Rect) {
	x := FrameXform(tg.Frame, o)
	orient := func(rs []geom.Rect) []geom.Rect {
		moved := make([]geom.Rect, len(rs))
		for i, r := range rs {
			moved[i] = x.ApplyRect(r)
		}
		return canonical(geom.RegionFromRects(moved...).Rects())
	}
	return orient(tg.Active), orient(tg.Context)
}

// EqualRects reports whether two canonical rect lists are identical —
// the exact check behind every hash match, so a 64-bit collision can
// never produce a wrong reuse.
func EqualRects(a, b []geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApplyFrame maps polygons through the frame-preserving transform for
// o — how a stored corrected solution is carried onto a
// similarity-matched candidate tile.
func ApplyFrame(polys []geom.Polygon, frame geom.Rect, o geom.Orient) []geom.Polygon {
	x := FrameXform(frame, o)
	out := make([]geom.Polygon, len(polys))
	for i, p := range polys {
		out[i] = x.ApplyPolygon(p)
	}
	return out
}
