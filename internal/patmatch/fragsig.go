package patmatch

import (
	"fmt"
	"hash/fnv"

	"goopc/internal/geom"
)

// Fragment signatures for the learned initial-bias prior (DESIGN.md
// 5j). A model-OPC fragment's converged bias is a function of the
// geometry the optics sees around its control site, so the prior keys
// its lookup table on a canonical form of that neighborhood: the
// geometry within Radius of the fragment midpoint, expressed in a frame
// where the fragment's outward normal points +X. Two fragments whose
// neighborhoods coincide in that frame are the same correction problem
// under the imaging model's translation- and D4-invariance, regardless
// of where or in which orientation they appear in the layout.
//
// Exactly two of the eight orientations map a given outward normal to
// +X (they differ by the mirror across the normal axis); the canonical
// form is the lexicographically smaller of the two transformed rect
// decompositions, which makes the signature invariant under all eight
// layout orientations. The exact canonical rects are retained alongside
// the 64-bit key so a hash collision between distinct geometries is
// detected at lookup time and degrades to "no prediction" — the same
// exact-check-behind-every-hash contract the pattern library uses.

// FragSig is the canonical signature of one fragment neighborhood.
type FragSig struct {
	// Kind is the fragment classification (geom.FragmentKind) and Len
	// the fragment length: fragments with equal surroundings but
	// different roles (a line end vs. a run) correct differently, so
	// both fold into the key.
	Kind uint8
	Len  geom.Coord
	// Radius is the capture radius (DBU).
	Radius geom.Coord
	// Rects is the canonical neighborhood decomposition: geometry within
	// Radius of the fragment midpoint, midpoint at the origin, outward
	// normal mapped to +X, lexicographically smallest of the two
	// normal-preserving orientations.
	Rects []geom.Rect

	key uint64
}

// CaptureFragment captures the canonical signature of a fragment given
// the surrounding geometry (the fragment's own polygon plus any
// context/halo polygons the engine simulates with).
func CaptureFragment(f geom.Fragment, env []geom.Polygon, radius geom.Coord) FragSig {
	mid := f.Edge.Mid()
	window := geom.Rect{
		X0: mid.X - radius, Y0: mid.Y - radius,
		X1: mid.X + radius, Y1: mid.Y + radius,
	}
	var nearby []geom.Polygon
	for _, p := range env {
		if p.BBox().Touches(window) {
			nearby = append(nearby, p)
		}
	}
	base := geom.RegionFromPolygons(nearby...).
		Intersect(geom.RegionFromRects(window)).
		Translate(mid.Neg()).Rects()
	var best []geom.Rect
	for _, o := range normalOrients(f.Edge.Normal()) {
		x := geom.Xform{Orient: o, Mag: 1}
		moved := make([]geom.Rect, len(base))
		for i, r := range base {
			moved[i] = x.ApplyRect(r)
		}
		// Re-normalize through a Region pass: the sweep's slab
		// decomposition is not rotation-covariant (see OrientRects).
		rs := canonical(geom.RegionFromRects(moved...).Rects())
		if best == nil || lessRects(rs, best) {
			best = rs
		}
	}
	s := FragSig{Kind: uint8(f.Kind), Len: f.Edge.Len(), Radius: radius, Rects: best}
	s.key = s.hash()
	return s
}

// Key is the 64-bit lookup key (kind, length, radius and canonical
// rects folded together). Callers must confirm SameGeometry on a key
// match before trusting it.
func (s FragSig) Key() uint64 { return s.key }

// Empty reports whether the capture window held no geometry.
func (s FragSig) Empty() bool { return len(s.Rects) == 0 }

// SameGeometry reports whether two signatures describe the identical
// correction problem — the exact check behind every key match, so a
// 64-bit collision can never produce a wrong bias prediction.
func (s FragSig) SameGeometry(o FragSig) bool {
	return s.Kind == o.Kind && s.Len == o.Len && s.Radius == o.Radius &&
		EqualRects(s.Rects, o.Rects)
}

// hash folds the signature fields into the lookup key.
func (s FragSig) hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "k%d|l%d|r%d|", s.Kind, s.Len, s.Radius)
	for _, r := range s.Rects {
		fmt.Fprintf(h, "%d,%d,%d,%d;", r.X0, r.Y0, r.X1, r.Y1)
	}
	return h.Sum64()
}

// normalOrients returns the two orientations that map the outward
// normal n (a unit axis vector) to +X. They differ by the mirror across
// the normal axis; a neighborhood symmetric about the fragment yields
// the same canonical rects under both.
func normalOrients(n geom.Point) [2]geom.Orient {
	var out [2]geom.Orient
	k := 0
	for o := geom.R0; o <= geom.MX270 && k < 2; o++ {
		if (geom.Xform{Orient: o, Mag: 1}).Apply(n) == geom.Pt(1, 0) {
			out[k] = o
			k++
		}
	}
	return out
}

// lessRects orders canonical rect lists lexicographically, using the
// same per-rect order canonical() sorts by.
func lessRects(a, b []geom.Rect) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			x, y := a[i], b[i]
			if x.Y0 != y.Y0 {
				return x.Y0 < y.Y0
			}
			if x.X0 != y.X0 {
				return x.X0 < y.X0
			}
			if x.Y1 != y.Y1 {
				return x.Y1 < y.Y1
			}
			return x.X1 < y.X1
		}
	}
	return len(a) < len(b)
}
