// Package patmatch implements 2D layout pattern capture and matching:
// a hotspot found once by simulation (or silicon) is captured as a
// geometry pattern, and new layouts are scanned for the same
// configuration without any imaging — the "DRC Plus" methodology that
// grew out of production OPC verification. Patterns match exactly
// (topology and dimensions) under all eight layout orientations.
package patmatch

import (
	"fmt"
	"hash/fnv"
	"sort"

	"goopc/internal/geom"
)

// Pattern is one captured layout neighborhood: the geometry within
// Radius of the anchor, expressed in anchor-relative coordinates.
type Pattern struct {
	Name   string
	Radius geom.Coord
	// rects is the canonical (sorted, disjoint) decomposition of the
	// captured window.
	rects []geom.Rect
	hash  uint64
}

// Capture extracts the pattern around an anchor point. The anchor
// should be derived from the geometry (typically the nearest polygon
// vertex to a hotspot) so scanning can regenerate candidate anchors.
func Capture(polys []geom.Polygon, anchor geom.Point, radius geom.Coord, name string) Pattern {
	window := geom.Rect{
		X0: anchor.X - radius, Y0: anchor.Y - radius,
		X1: anchor.X + radius, Y1: anchor.Y + radius,
	}
	clip := geom.RegionFromRects(window)
	var nearby []geom.Polygon
	for _, p := range polys {
		if p.BBox().Touches(window) {
			nearby = append(nearby, p)
		}
	}
	region := geom.RegionFromPolygons(nearby...).Intersect(clip).Translate(anchor.Neg())
	rects := canonical(region.Rects())
	return Pattern{Name: name, Radius: radius, rects: rects, hash: hashRects(rects)}
}

// canonical sorts a rect list into the comparison order.
func canonical(rs []geom.Rect) []geom.Rect {
	out := append([]geom.Rect{}, rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.Y1 != b.Y1 {
			return a.Y1 < b.Y1
		}
		return a.X1 < b.X1
	})
	return out
}

func hashRects(rs []geom.Rect) uint64 {
	h := fnv.New64a()
	for _, r := range rs {
		fmt.Fprintf(h, "%d,%d,%d,%d;", r.X0, r.Y0, r.X1, r.Y1)
	}
	return h.Sum64()
}

// Empty reports whether the captured window held no geometry.
func (p Pattern) Empty() bool { return len(p.rects) == 0 }

// Variants returns the pattern under all eight orientations, each
// re-canonicalized. Matching against all variants makes the scan
// orientation-invariant.
func (p Pattern) Variants() []Pattern {
	out := make([]Pattern, 0, 8)
	seen := map[uint64]bool{}
	for o := geom.R0; o <= geom.MX270; o++ {
		x := geom.Xform{Orient: o, Mag: 1}
		rs := make([]geom.Rect, 0, len(p.rects))
		for _, r := range p.rects {
			rs = append(rs, x.ApplyRect(r))
		}
		rs = canonical(rs)
		h := hashRects(rs)
		if seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, Pattern{Name: p.Name, Radius: p.Radius, rects: rs, hash: h})
	}
	return out
}

// Match is one found occurrence.
type Match struct {
	Name string
	At   geom.Point
}

// Library is a set of patterns with orientation variants expanded,
// ready for scanning.
type Library struct {
	radius   geom.Coord
	byHash   map[uint64]string
	patterns int
}

// NewLibrary creates an empty library. All member patterns must share
// one capture radius (scanning recaptures at that radius).
func NewLibrary(radius geom.Coord) *Library {
	return &Library{radius: radius, byHash: map[uint64]string{}}
}

// Add inserts a pattern and its orientation variants. Patterns captured
// at a different radius are rejected.
func (l *Library) Add(p Pattern) error {
	if p.Radius != l.radius {
		return fmt.Errorf("patmatch: pattern radius %d != library radius %d", p.Radius, l.radius)
	}
	if p.Empty() {
		return fmt.Errorf("patmatch: refusing empty pattern %q", p.Name)
	}
	for _, v := range p.Variants() {
		if _, dup := l.byHash[v.hash]; !dup {
			l.byHash[v.hash] = p.Name
		}
	}
	l.patterns++
	return nil
}

// Len returns the number of added patterns (before variant expansion).
func (l *Library) Len() int { return l.patterns }

// Scan searches the layer for library patterns. Candidate anchors are
// every polygon vertex (the same anchor family Capture expects).
// Matches at the same location by the same pattern are deduplicated.
func (l *Library) Scan(polys []geom.Polygon) []Match {
	if len(l.byHash) == 0 || len(polys) == 0 {
		return nil
	}
	idx := geom.NewGridIndex(4 * l.radius)
	for i, p := range polys {
		idx.Insert(p.BBox(), int32(i))
	}
	seen := map[Match]bool{}
	var out []Match
	for _, p := range polys {
		for _, v := range p {
			window := geom.Rect{
				X0: v.X - l.radius, Y0: v.Y - l.radius,
				X1: v.X + l.radius, Y1: v.Y + l.radius,
			}
			var nearby []geom.Polygon
			for _, id := range idx.CollectIDs(window) {
				nearby = append(nearby, polys[id])
			}
			region := geom.RegionFromPolygons(nearby...).
				Intersect(geom.RegionFromRects(window)).
				Translate(v.Neg())
			h := hashRects(canonical(region.Rects()))
			if name, ok := l.byHash[h]; ok {
				m := Match{Name: name, At: v}
				if !seen[m] {
					seen[m] = true
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// NearestVertex returns the polygon vertex closest to a point — the
// canonical anchor for capturing a hotspot found at an arbitrary
// location.
func NearestVertex(polys []geom.Polygon, at geom.Point) (geom.Point, bool) {
	best := geom.Point{}
	bestD := int64(-1)
	for _, p := range polys {
		for _, v := range p {
			d := v.ManhattanDist(at)
			if bestD < 0 || d < bestD {
				best, bestD = v, d
			}
		}
	}
	return best, bestD >= 0
}
