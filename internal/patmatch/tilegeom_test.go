package patmatch

import (
	"testing"

	"goopc/internal/geom"
)

// lShape is an asymmetric polygon: no two of its eight orientation
// images coincide, so variant expansion must produce all eight.
func lShape() geom.Polygon {
	return geom.Polygon{
		{X: 100, Y: 100}, {X: 400, Y: 100}, {X: 400, Y: 200},
		{X: 200, Y: 200}, {X: 200, Y: 500}, {X: 100, Y: 500},
	}
}

func TestTileGeometryCanonicalOrderInsensitive(t *testing.T) {
	core := geom.Rect{X0: 1000, Y0: 2000, X1: 2000, Y1: 3000}
	a := geom.TranslatePolygons([]geom.Polygon{lShape()}, geom.Pt(1000, 2000))
	b := geom.Polygon{ // same region, different vertex start and order
		{X: 200, Y: 200}, {X: 200, Y: 500}, {X: 100, Y: 500},
		{X: 100, Y: 100}, {X: 400, Y: 100}, {X: 400, Y: 200},
	}
	bt := geom.TranslatePolygons([]geom.Polygon{b}, geom.Pt(1000, 2000))
	ga := NewTileGeometry(a, nil, core)
	gb := NewTileGeometry(bt, nil, core)
	if !EqualRects(ga.Active, gb.Active) {
		t.Fatalf("same region canonicalized differently:\n%v\n%v", ga.Active, gb.Active)
	}
	if ga.ActiveHash() != gb.ActiveHash() {
		t.Fatalf("hashes differ for identical canonical forms")
	}
}

func TestTileGeometryVariantsAsymmetric(t *testing.T) {
	core := geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}
	tg := NewTileGeometry([]geom.Polygon{lShape()}, nil, core)
	vs := tg.Variants()
	if len(vs) != 8 {
		t.Fatalf("asymmetric tile expanded to %d variants, want 8", len(vs))
	}
	// Every variant's hash must be reproduced by transforming the tile.
	for _, v := range vs {
		a, c := tg.OrientRects(v.Orient)
		if hashRects(a) != v.ActiveHash || hashRects(c) != v.ContextHash {
			t.Fatalf("variant %v hash does not match OrientRects", v.Orient)
		}
	}
}

func TestTileGeometryVariantsSymmetric(t *testing.T) {
	core := geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}
	// A centered square is invariant under all eight orientations.
	sq := geom.Rect{X0: 400, Y0: 400, X1: 600, Y1: 600}.Polygon()
	tg := NewTileGeometry([]geom.Polygon{sq}, nil, core)
	if vs := tg.Variants(); len(vs) != 1 {
		t.Fatalf("fully symmetric tile expanded to %d variants, want 1", len(vs))
	}
}

// TestFrameXformRoundTrip is the soundness property the pattern library
// leans on: transforming a tile's geometry with FrameXform(o) and
// hashing must land exactly on the variant the index stored for o, and
// ApplyFrame must carry polygons to the same place as OrientRects
// carries rects.
func TestFrameXformRoundTrip(t *testing.T) {
	core := geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}
	poly := lShape()
	tg := NewTileGeometry([]geom.Polygon{poly}, nil, core)
	for o := geom.R0; o <= geom.MX270; o++ {
		moved := ApplyFrame([]geom.Polygon{poly}, core, o)
		// The transformed polygons stay inside the frame...
		bb := moved[0].BBox()
		if bb.X0 < 0 || bb.Y0 < 0 || bb.X1 > 1000 || bb.Y1 > 1000 {
			t.Fatalf("%v: transformed geometry left the frame: %v", o, bb)
		}
		// ...and re-canonicalizing them reproduces OrientRects exactly.
		want, _ := tg.OrientRects(o)
		got := canonical(geom.RegionFromPolygons(moved...).Rects())
		if !EqualRects(got, want) {
			t.Fatalf("%v: ApplyFrame and OrientRects disagree:\n%v\n%v", o, got, want)
		}
	}
}

func TestTileGeometrySigOrientationInvariant(t *testing.T) {
	core := geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}
	ctxPoly := geom.Rect{X0: -200, Y0: 100, X1: -50, Y1: 300}.Polygon()
	tg := NewTileGeometry([]geom.Polygon{lShape()}, []geom.Polygon{ctxPoly}, core)
	sig := tg.Sig()
	for o := geom.R90; o <= geom.MX270; o++ {
		moved := NewTileGeometry(
			ApplyFrame([]geom.Polygon{lShape()}, core, o),
			ApplyFrame([]geom.Polygon{ctxPoly}, core, o), core)
		if moved.Sig() != sig {
			t.Fatalf("%v: signature changed under orientation", o)
		}
	}
	// A genuinely different tile must (overwhelmingly) differ.
	other := NewTileGeometry([]geom.Polygon{
		geom.Rect{X0: 100, Y0: 100, X1: 300, Y1: 300}.Polygon()}, nil, core)
	if other.Sig() == sig {
		t.Fatalf("distinct tiles share a signature")
	}
}
