package core

import (
	"reflect"
	"runtime"
	"testing"

	"goopc/internal/geom"
)

// twoIsolatedClusters builds two translation-identical clusters three
// tiles apart (tile = 2500): each lands alone in its tile with an empty
// halo, so the scheduler must dedup them into one equivalence class and
// find both clean in pass 2.
func twoIsolatedClusters() ([]geom.Polygon, geom.Point) {
	cluster := []geom.Polygon{
		geom.R(200, 200, 380, 1700).Polygon(),
		geom.R(600, 200, 780, 1700).Polygon(),
	}
	shift := geom.Pt(7500, 0)
	return append(append([]geom.Polygon{}, cluster...), geom.TranslatePolygons(cluster, shift)...), shift
}

func TestCorrectWindowedPrunesEmptyTiles(t *testing.T) {
	f := testFlow(t)
	target, _ := twoIsolatedClusters()
	_, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tiles != 2 {
		t.Errorf("scheduled tiles = %d, want 2 (only non-empty tiles)", st.Tiles)
	}
	if st.EmptyPruned < 2 {
		t.Errorf("empty pruned = %d, want >= 2", st.EmptyPruned)
	}
}

func TestCorrectWindowedDedupReuse(t *testing.T) {
	f := *testFlow(t)
	target, shift := twoIsolatedClusters()

	res, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReusedTiles != 1 || st.CorrectedTiles != 1 {
		t.Errorf("corrected/reused tiles = %d/%d, want 1/1", st.CorrectedTiles, st.ReusedTiles)
	}
	// The reused tile's result is the representative's translated.
	n := len(res.Corrected)
	if n%2 != 0 {
		t.Fatalf("odd corrected count %d", n)
	}
	first, second := res.Corrected[:n/2], res.Corrected[n/2:]
	if !reflect.DeepEqual(geom.TranslatePolygons(first, shift), second) {
		t.Error("reused tile result is not the translated representative")
	}

	// Dedup is exact: disabling it must not change the output.
	g := f
	g.DisableDedup = true
	resInd, stInd, err := g.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if stInd.ReusedTiles != 0 || stInd.CorrectedTiles != 2 {
		t.Errorf("no-dedup corrected/reused = %d/%d, want 2/0", stInd.CorrectedTiles, stInd.ReusedTiles)
	}
	if !reflect.DeepEqual(res.Corrected, resInd.Corrected) {
		t.Error("deduplicated output differs from independently corrected output")
	}
}

func TestCorrectWindowedDirtySkipExact(t *testing.T) {
	f := *testFlow(t)
	f.ModelIterFull = 4 // keep the L3 two-pass run cheap
	// Two lines coupling across the tile-0/tile-1 boundary (dirty in
	// pass 2) plus an isolated line three tiles away (clean in pass 2).
	target := []geom.Polygon{
		geom.R(2200, 200, 2380, 1700).Polygon(),
		geom.R(2620, 200, 2800, 1700).Polygon(),
		geom.R(8000, 200, 8180, 2100).Polygon(),
	}

	res, st, err := f.CorrectWindowed(target, L3, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes != 2 {
		t.Fatalf("passes = %d", st.Passes)
	}
	if st.CleanTiles < 1 {
		t.Errorf("clean tiles = %d, want >= 1 (the isolated tile)", st.CleanTiles)
	}

	g := f
	g.DisableDirtySkip = true
	resFull, stFull, err := g.CorrectWindowed(target, L3, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if stFull.CleanTiles != 0 {
		t.Errorf("disabled dirty skip still skipped %d tiles", stFull.CleanTiles)
	}
	if stFull.CorrectedTiles+stFull.ReusedTiles <= st.CorrectedTiles+st.ReusedTiles {
		t.Errorf("full pass 2 did not do more work: %d+%d vs %d+%d",
			stFull.CorrectedTiles, stFull.ReusedTiles, st.CorrectedTiles, st.ReusedTiles)
	}
	// With DirtyEps zero the skip is exact: identical output.
	if !reflect.DeepEqual(res.Corrected, resFull.Corrected) {
		t.Error("dirty-tile pass 2 output differs from full pass 2")
	}
}

func TestCorrectWindowedParallelBitwiseEqual(t *testing.T) {
	f := testFlow(t)
	// Force several workers even on a single-CPU machine so the
	// completion order actually scrambles.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	var target []geom.Polygon
	for i := 0; i < 8; i++ {
		x := geom.Coord(i) * 700
		target = append(target, geom.R(x, 0, x+180, 1800).Polygon())
	}
	resS, _, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	resP, _, err := f.CorrectWindowed(target, L2, 2500, true)
	if err != nil {
		t.Fatal(err)
	}
	// Not just the same region: the same polygons in the same order
	// with the same vertices, so repeated runs write identical GDS.
	if !reflect.DeepEqual(resS.Corrected, resP.Corrected) {
		t.Error("parallel output is not bitwise equal to serial output")
	}
}

func TestCorrectWindowedTileIterationStats(t *testing.T) {
	f := testFlow(t)
	target, _ := twoIsolatedClusters()
	_, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations < 1 {
		t.Errorf("iterations = %d, want >= 1", st.Iterations)
	}
	if st.KernelHits+st.KernelMisses < 1 {
		t.Errorf("kernel cache stats empty: hits=%d misses=%d", st.KernelHits, st.KernelMisses)
	}
}
