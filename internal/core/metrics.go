package core

import "goopc/internal/obs"

// Registry series for the tiled full-layer scheduler. The per-run
// TileStats struct remains the API result (fed from the same events),
// while these series accumulate flow-wide and drive the live /status
// view: goopc_tiles_done / goopc_tiles_total track the current pass and
// goopc_workers_busy the engine occupancy.
var (
	mRuns = obs.Default().Counter("goopc_corrections_total",
		"windowed full-layer correction runs")
	mPasses = obs.Default().Counter("goopc_correction_passes_total",
		"context passes executed across all runs")
	mTilesScheduled = obs.Default().Counter("goopc_tiles_scheduled_total",
		"tiles scheduled (grid tiles containing geometry)")
	mTilesEmptyPruned = obs.Default().Counter("goopc_tiles_empty_pruned_total",
		"grid tiles pruned empty at enumeration time")
	mTilesCorrected = obs.Default().Counter("goopc_tiles_corrected_total",
		"(tile, pass) engine runs actually executed")
	mTilesReused = obs.Default().Counter("goopc_tiles_reused_total",
		"(tile, pass) results reused from a deduplicated equivalence class")
	mTilesClean = obs.Default().Counter("goopc_tiles_clean_skipped_total",
		"pass-2+ tiles skipped because no pass-1 movement reached their halo")
	mTileSeconds = obs.Default().Histogram("goopc_tile_correct_seconds",
		"wall-clock seconds per tile-class engine run",
		[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
	mTilesDone = obs.Default().Gauge("goopc_tiles_done",
		"tiles resolved in the current pass (corrected, reused or clean)")
	mTilesTotal = obs.Default().Gauge("goopc_tiles_total",
		"tiles scheduled in the current pass")
	mWorkersBusy = obs.Default().Gauge("goopc_workers_busy",
		"tile workers currently inside the correction engine")

	// Resilience series: retries, recovered panics, per-tile timeouts,
	// degradation-ladder fallbacks, and checkpoint activity.
	mTileRetries = obs.Default().Counter("goopc_tile_retries_total",
		"tile-class correction attempts beyond the first")
	mTilePanics = obs.Default().Counter("goopc_tile_panics_total",
		"tile worker panics recovered by the scheduler")
	mTileTimeouts = obs.Default().Counter("goopc_tile_timeouts_total",
		"tile attempts aborted by the per-tile timeout")
	mTilesDegraded = obs.Default().Counter("goopc_tiles_degraded_total",
		"(tile, pass) results produced by a degradation fallback (rules or uncorrected)")
	mTilesResumed = obs.Default().Counter("goopc_tiles_resumed_total",
		"(tile, pass) results restored from a checkpoint instead of corrected")
	mTilesRemote = obs.Default().Counter("goopc_tiles_remote_total",
		"(tile, pass) results solved by cluster workers via the class solver")
	mCheckpointWrites = obs.Default().Counter("goopc_checkpoint_writes_total",
		"checkpoint artifacts written (periodic and final)")
)
