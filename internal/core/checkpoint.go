package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"goopc/internal/geom"
	"goopc/internal/obs/trace"
)

// checkpointVersion guards the artifact format; a loader refuses other
// versions rather than misreading them.
const checkpointVersion = 1

// ErrCheckpointMismatch marks a resume refused because the checkpoint's
// fingerprint does not match the run (different target geometry or Flow
// settings). Callers classify it as invalid input — opcflow exits 3 —
// and the opcd server restarts the job from scratch instead of failing
// it.
var ErrCheckpointMismatch = errors.New("checkpoint does not match this run's target or settings")

// CheckpointEntry is one completed tile-class result, stored at the
// canonical origin (tile core translated to (0,0)) so one entry serves
// every placement of the class — the same translation-invariance that
// powers the dedup scheduler makes checkpoints cheap.
//
// Only clean, fully-converged engine results are checkpointed. Degraded
// results (rule-based or uncorrected fallbacks after faults) are
// deliberately excluded: a resumed run re-attempts those tiles, so a
// fault-free resume reproduces the fault-free output bit-identically.
type CheckpointEntry struct {
	Polys []geom.Polygon `json:"polys"`
	RMS   float64        `json:"rms"`
	Iters int            `json:"iters"`
}

// Checkpoint is the resumable state of a windowed correction run:
// completed canonical tile-class results keyed by pass and by the
// class's exact geometry key. A run interrupted by SIGINT, a deadline,
// or a crash-and-restart resumes by skipping every class already
// present; everything else (tile enumeration, dedup, dirty filtering)
// is recomputed deterministically, so the resumed output is
// bit-identical to an uninterrupted run.
type Checkpoint struct {
	Version int `json:"version"`
	// Fingerprint ties the checkpoint to one (target, level, tile,
	// engine-settings) combination; resuming against anything else is
	// refused.
	Fingerprint string     `json:"fingerprint"`
	Level       string     `json:"level"`
	TileSize    geom.Coord `json:"tile_size"`
	// Passes maps pass number -> class key -> completed result.
	Passes map[int]map[string]CheckpointEntry `json:"passes"`
}

// NewCheckpoint returns an empty checkpoint for the fingerprint.
func NewCheckpoint(fingerprint, level string, tile geom.Coord) *Checkpoint {
	return &Checkpoint{
		Version:     checkpointVersion,
		Fingerprint: fingerprint,
		Level:       level,
		TileSize:    tile,
		Passes:      map[int]map[string]CheckpointEntry{},
	}
}

// Entries returns the total completed class count across passes.
func (c *Checkpoint) Entries() int {
	n := 0
	for _, m := range c.Passes {
		n += len(m)
	}
	return n
}

// lookup returns the completed entry for (pass, key), if present.
func (c *Checkpoint) lookup(pass int, key string) (CheckpointEntry, bool) {
	if c == nil {
		return CheckpointEntry{}, false
	}
	e, ok := c.Passes[pass][key]
	return e, ok
}

// add records a completed class result.
func (c *Checkpoint) add(pass int, key string, e CheckpointEntry) {
	m := c.Passes[pass]
	if m == nil {
		m = map[string]CheckpointEntry{}
		c.Passes[pass] = m
	}
	m[key] = e
}

// WriteFile atomically serializes the checkpoint: write to a temp file
// in the same directory, fsync, rename. A crash mid-write leaves the
// previous artifact intact.
func (c *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: checkpoint write %s: %w", path, werr)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint artifact written by WriteFile.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s: version %d, want %d", path, c.Version, checkpointVersion)
	}
	if c.Passes == nil {
		c.Passes = map[int]map[string]CheckpointEntry{}
	}
	return &c, nil
}

// classKeyHash compresses a canonical class key (the exact geometry
// encoding) to a fixed-size hex digest for checkpoint storage.
func classKeyHash(key []byte) string {
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:16])
}

// runFingerprint hashes everything the tiled correction result depends
// on: the target geometry (canonical encoding) and every engine knob.
// Two runs with equal fingerprints produce bit-identical outputs, so a
// checkpoint from one may seed the other.
func (f *Flow) runFingerprint(target []geom.Polygon, level Level, tile geom.Coord, passes int) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s|tile=%d|passes=%d|halo=%d|iter=%d/%d|damp=%g|eps=%g|dirty=%d|th=%.12g|dedup=%t|skip=%t|spec=%+v|mrc=%+v|",
		checkpointVersion, level, tile, passes, f.Ambit,
		f.ModelIter1, f.ModelIterFull, f.Damping, f.ConvergeEps, f.DirtyEps,
		f.Threshold, f.DisableDedup, f.DisableDirtySkip, f.Spec, f.MRC)
	if f.Prior != nil {
		// A warmed run's tile results depend on the table contents, so a
		// checkpoint warmed by one table must never resume a run warmed
		// by another — or a cold run. Cold runs omit the token entirely,
		// keeping every pre-existing checkpoint valid.
		fmt.Fprintf(h, "prior=%s|", f.Prior.Fingerprint())
	}
	var buf []byte
	// Hash in bounded chunks so huge layers do not hold a second copy.
	for i := 0; i < len(target); i += 1024 {
		end := i + 1024
		if end > len(target) {
			end = len(target)
		}
		buf = geom.AppendCanonicalPolygons(buf[:0], target[i:end], geom.Pt(0, 0))
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ckptWriter accumulates completed entries during a run and flushes
// them to disk periodically and at run end. Workers call add
// concurrently; writes happen under the lock but at most once per
// interval, so the scheduler never stalls on disk in the steady state.
type ckptWriter struct {
	mu    sync.Mutex
	ck    *Checkpoint
	path  string
	every time.Duration
	last  time.Time
	// tw records CheckpointWrite flight-recorder events (nil-safe;
	// flushes happen on whichever worker triggered them, but attributing
	// them to the coordinator ring keeps the timeline readable).
	tw *trace.Worker
}

func newCkptWriter(ck *Checkpoint, path string, every time.Duration, rec *trace.Recorder) *ckptWriter {
	if every <= 0 {
		every = 30 * time.Second
	}
	return &ckptWriter{ck: ck, path: path, every: every, last: time.Now(), tw: rec.Worker(0)}
}

// add records one completed class and flushes if the interval elapsed.
func (w *ckptWriter) add(pass int, key string, e CheckpointEntry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ck.add(pass, key, e)
	if w.path == "" || time.Since(w.last) < w.every {
		return nil
	}
	w.last = time.Now()
	mCheckpointWrites.Inc()
	w.tw.Emit(trace.CheckpointWrite, pass, geom.Rect{}, w.ck.Entries(), 0, 0, w.path)
	return w.ck.WriteFile(w.path)
}

// flush writes the current state unconditionally (run end, cancel).
func (w *ckptWriter) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.path == "" {
		return nil
	}
	w.last = time.Now()
	mCheckpointWrites.Inc()
	w.tw.Emit(trace.CheckpointWrite, 0, geom.Rect{}, w.ck.Entries(), 0, 0, w.path)
	return w.ck.WriteFile(w.path)
}
