package core

import (
	"fmt"
	"strings"

	"goopc/internal/obs/trace"
)

// ExpectedTraceCounts maps a tiled run's TileStats onto the
// member-weighted flight-recorder tile counts the run must have
// emitted. The mapping is the recorder's reconciliation contract
// (DESIGN.md 5h):
//
//   - every (tile, pass) schedule entry emits one scheduled event, so
//     Scheduled = Tiles × Passes (non-tiled levels have Passes 0);
//   - every engine run emits one solve begin/end pair — degraded
//     classes included, the engine attempted them — so Solved =
//     CorrectedTiles;
//   - reuse rungs are member-weighted: Dedup = ReusedTiles, LibExact /
//     LibSimilar / Resumed = their TileStats counterparts;
//   - Clean = CleanTiles, Degraded = DegradedRules +
//     DegradedUncorrected, Retries and Timeouts 1:1.
//
// Checkpoints has no TileStats counterpart (flush cadence is
// wall-clock-driven) and stays zero here; Reconcile ignores it.
func (st TileStats) ExpectedTraceCounts() trace.TileCounts {
	return trace.TileCounts{
		Scheduled:  st.Tiles * st.Passes,
		Solved:     st.CorrectedTiles,
		Dedup:      st.ReusedTiles,
		Clean:      st.CleanTiles,
		LibExact:   st.LibExactTiles,
		LibSimilar: st.LibSimilarTiles,
		Resumed:    st.ResumedTiles,
		Degraded:   st.DegradedRules + st.DegradedUncorrected,
		Retries:    st.Retries,
		Timeouts:   st.Timeouts,
		Remote:     st.RemoteTiles,
	}
}

// ReconcileTrace verifies that a flight-recorder summary accounts for
// exactly the tile outcomes the scheduler reported (want — typically
// TileStats.ExpectedTraceCounts, summed with TileCounts.Add across the
// runs sharing the recorder). A trace with ring-overflow drops cannot
// reconcile and is rejected outright; otherwise every count must match
// exactly, and any discrepancy — an emit site missed, double-fired, or
// events lost — is reported field by field.
func ReconcileTrace(sum trace.Summary, want trace.TileCounts) error {
	if sum.Drops > 0 {
		return fmt.Errorf("core: trace dropped %d of %d events (ring overflow); counts not reconcilable — raise the ring capacity",
			sum.Drops, sum.Emitted)
	}
	got := sum.Tiles
	checks := []struct {
		name      string
		got, want int
	}{
		{"scheduled", got.Scheduled, want.Scheduled},
		{"solved", got.Solved, want.Solved},
		{"dedup", got.Dedup, want.Dedup},
		{"clean", got.Clean, want.Clean},
		{"patlib-exact", got.LibExact, want.LibExact},
		{"patlib-similar", got.LibSimilar, want.LibSimilar},
		{"resumed", got.Resumed, want.Resumed},
		{"degraded", got.Degraded, want.Degraded},
		{"retries", got.Retries, want.Retries},
		{"timeouts", got.Timeouts, want.Timeouts},
		{"remote", got.Remote, want.Remote},
	}
	var bad []string
	for _, c := range checks {
		if c.got != c.want {
			bad = append(bad, fmt.Sprintf("%s: trace %d != stats %d", c.name, c.got, c.want))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("core: trace does not reconcile with TileStats: %s", strings.Join(bad, "; "))
	}
	return nil
}
