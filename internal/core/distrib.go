package core

import (
	"context"

	"goopc/internal/geom"
)

// ClassSolveRequest is one canonical tile class offered to an external
// solver (DESIGN.md 5i): the class key, the core rectangle and the
// active + halo-context geometry, all translated into the canonical
// frame (tile origin at (0,0)) — exactly the frame deduplicated
// classes solve in and checkpoint entries are stored in, so a remote
// solution is a CheckpointEntry and folds through the resume path.
type ClassSolveRequest struct {
	// Pass is the context pass the class belongs to; Key its
	// fixed-size canonical class-key hash (the checkpoint key).
	Pass int         `json:"pass"`
	Key  string      `json:"key"`
	Core geom.Rect   `json:"core"`
	// Active is the geometry under correction clipped to the core;
	// Halo the frozen context ring around it.
	Active []geom.Polygon `json:"active"`
	Halo   []geom.Polygon `json:"halo,omitempty"`
}

// ClassSolver solves tile classes out of process. The scheduler calls
// it once per pass with every class the resume checkpoint did not
// already cover; the returned map holds whatever the solver managed to
// solve cleanly, keyed by class key. The contract is best-effort:
// missing keys (solver degraded, workers died, no cluster at all) fall
// through to the local solve path, so a solver may return a partial
// map or nil and the run still completes with identical output. Clean
// entries only — a solver must never return degraded results, because
// folded entries are checkpointed and the checkpoint invariant is that
// fault-free resumes reproduce the fault-free answer.
type ClassSolver func(ctx context.Context, level Level, tile geom.Coord, reqs []ClassSolveRequest) map[string]CheckpointEntry

// SolveClass runs one canonical tile class through the same resilience
// ladder (retries, timeout, panic isolation — rule-based and
// uncorrected fallbacks) the tiled scheduler applies locally. It is
// the cluster worker's execution path: the coordinator ships
// ClassSolveRequests, the worker calls SolveClass on a flow calibrated
// from the same spec, and the entry comes back in checkpoint format.
// degraded is "" for a clean solve, otherwise the ladder mode
// ("rules" / "uncorrected") — degraded results must be reported as
// unsolved, never folded. A non-nil error means the solve was
// cancelled, not that the class failed.
func (f *Flow) SolveClass(ctx context.Context, level Level, req ClassSolveRequest) (CheckpointEntry, string, error) {
	window := req.Core.Grow(f.Ambit)
	cr := f.correctClass(ctx, level, req.Active, req.Halo, req.Core, window, f.Tracer.Worker(0), req.Pass, req.Core)
	if cr.err != nil {
		return CheckpointEntry{}, "", cr.err
	}
	return CheckpointEntry{Polys: cr.polys, RMS: cr.rms, Iters: cr.iters}, cr.degraded, nil
}
