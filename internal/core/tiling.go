package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/opc/model"
)

// TileStats reports a windowed full-layer correction run.
type TileStats struct {
	Tiles     int
	Polygons  int
	Corrected int
	// Passes is the number of context passes run.
	Passes int
	// Seconds is the wall-clock correction time (all tiles, all passes).
	Seconds float64
	// WorstRMS is the worst per-tile final EPE RMS of the last pass.
	WorstRMS float64
}

// CorrectWindowed runs model-based correction over an arbitrarily large
// flat layer by tiling: each tile corrects the geometry clipped to its
// core (cut edges frozen) with a halo of frozen context, so no
// simulation window exceeds the optics grid limit. This is the shape of
// every production full-chip OPC engine; the halo is the
// stitching-accuracy knob.
//
// Correction runs in two context passes: pass 1 corrects every tile
// against as-drawn halo context; pass 2 re-corrects against the pass-1
// corrected context. Without the second pass every tile assumes its
// neighbors stay drawn while they all move — the assembled mask then
// systematically overshoots (each tile's correction double-counts the
// proximity change its neighbors are also making).
//
// Tiles run in parallel across CPUs when parallel is true.
func (f *Flow) CorrectWindowed(target []geom.Polygon, level Level, tile geom.Coord, parallel bool) (opc.Result, TileStats, error) {
	var st TileStats
	if len(target) == 0 {
		return opc.Result{}, st, fmt.Errorf("core: empty target")
	}
	if level == L0 {
		return opc.Uncorrected(target), st, nil
	}
	if level == L1 {
		// Rule-based correction is local geometry: no tiling needed.
		t0 := time.Now()
		res := f.Rules.Apply(target)
		st.Seconds = time.Since(t0).Seconds()
		st.Polygons = len(target)
		st.Corrected = len(res.Corrected)
		st.Tiles = 1
		return res, st, nil
	}
	if tile < 2*f.Ambit {
		return opc.Result{}, st, fmt.Errorf("core: tile %d smaller than twice the ambit %d", tile, f.Ambit)
	}
	st.Polygons = len(target)
	halo := f.Ambit
	passes := f.TilePasses
	if passes < 1 {
		passes = 2
	}
	if level == L2 {
		// Single-iteration correction moves edges too little for
		// context double-counting to matter; one pass.
		passes = 1
	}
	st.Passes = passes

	idx := geom.NewGridIndex(tile)
	var bounds geom.Rect
	for i, p := range target {
		bb := p.BBox()
		idx.Insert(bb, int32(i))
		if i == 0 {
			bounds = bb
		} else {
			bounds = bounds.Union(bb)
		}
	}

	type job struct{ core geom.Rect }
	var jobs []job
	for y := bounds.Y0; y < bounds.Y1; y += tile {
		for x := bounds.X0; x < bounds.X1; x += tile {
			jobs = append(jobs, job{geom.Rect{X0: x, Y0: y, X1: x + tile, Y1: y + tile}})
		}
	}
	st.Tiles = len(jobs)

	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(jobs) {
			workers = len(jobs)
		}
	}

	t0 := time.Now()
	// Context source: the drawn layer on pass 1, the previous pass's
	// corrected layer afterwards.
	ctxPolys := target
	ctxIdx := idx
	var out opc.Result
	for pass := 1; pass <= passes; pass++ {
		var mu sync.Mutex
		var firstErr error
		passOut := opc.Result{}
		passWorst := 0.0
		jobCh := make(chan job)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobCh {
					active := clipToRegion(target, idx, j.core, geom.RegionFromRects(j.core))
					if len(active) == 0 {
						continue
					}
					window := j.core.Grow(halo)
					ring := geom.RegionFromRects(window).Subtract(geom.RegionFromRects(j.core))
					context := clipToRegion(ctxPolys, ctxIdx, window, ring)
					eng := model.New(f.Sim, f.Threshold)
					eng.Spec = f.Spec
					eng.MRC = f.MRC
					eng.Damping = f.Damping
					if level == L2 {
						eng.MaxIter = f.ModelIter1
					} else {
						eng.MaxIter = f.ModelIterFull
					}
					eng.Context = context
					core := j.core
					eng.FreezeBoundary = &core
					// Everything is clipped to core + halo, so the window
					// never exceeds tile + 2*halo regardless of how long
					// the original wires are.
					res, conv, err := eng.Correct(active, window)
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("core: pass %d tile %v: %w", pass, j.core, err)
					}
					if err == nil {
						passOut.Corrected = append(passOut.Corrected, res.Corrected...)
						if rms := conv.Final().RMS; rms > passWorst {
							passWorst = rms
						}
					}
					mu.Unlock()
				}
			}()
		}
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
		if firstErr != nil {
			st.Seconds = time.Since(t0).Seconds()
			return opc.Result{}, st, firstErr
		}
		out = passOut
		st.WorstRMS = passWorst
		if pass < passes {
			ctxPolys = out.Corrected
			ctxIdx = geom.NewGridIndex(tile)
			for i, p := range ctxPolys {
				ctxIdx.Insert(p.BBox(), int32(i))
			}
		}
	}
	st.Seconds = time.Since(t0).Seconds()
	st.Corrected = len(out.Corrected)
	return out, st, nil
}

// clipToRegion gathers the polygons touching the query window and clips
// them to the region (fast-pathing polygons already inside it).
func clipToRegion(polys []geom.Polygon, idx *geom.GridIndex, query geom.Rect, clip geom.Region) []geom.Polygon {
	cb := clip.BBox()
	var out []geom.Polygon
	for _, id := range idx.CollectIDs(query) {
		p := polys[id]
		bb := p.BBox()
		if !bb.Touches(cb) {
			continue
		}
		// Fast path: fully inside a single-rect clip.
		if clip.Count() == 1 {
			r := clip.Rects()[0]
			if bb.X0 >= r.X0 && bb.Y0 >= r.Y0 && bb.X1 <= r.X1 && bb.Y1 <= r.Y1 {
				out = append(out, p)
				continue
			}
		}
		pieces := geom.RegionFromPolygons(p).Intersect(clip).Polygons()
		out = append(out, pieces...)
	}
	return out
}
