package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"goopc/internal/geom"
	"goopc/internal/obs/trace"
	"goopc/internal/opc"
	"goopc/internal/opc/model"
	"goopc/internal/patlib"
)

// TileStats reports a windowed full-layer correction run.
type TileStats struct {
	// Tiles is the number of scheduled tiles: grid tiles that actually
	// contain target geometry. EmptyPruned counts the grid tiles
	// dropped at enumeration time because the spatial index proved them
	// empty.
	Tiles       int
	EmptyPruned int
	Polygons    int
	Corrected   int
	// CorrectedTiles counts (tile, pass) engine runs; ReusedTiles the
	// (tile, pass) results obtained by translating a deduplicated
	// equivalence-class representative; CleanTiles the pass-2+ tiles
	// skipped because no pass-1 movement reached their halo.
	CorrectedTiles int
	ReusedTiles    int
	CleanTiles     int
	// Iterations is the total model-iteration count over all engine
	// runs — the quantity the convergence early-exit shrinks.
	Iterations int
	// KernelHits and KernelMisses are the simulator kernel-cache
	// statistics accumulated during this run.
	KernelHits, KernelMisses int64
	// Passes is the number of context passes run.
	Passes int
	// Seconds is the wall-clock correction time (all tiles, all passes).
	Seconds float64
	// WorstRMS is the worst per-tile final EPE RMS of the last pass.
	WorstRMS float64
	// Resilience accounting. Retries counts tile-class attempts beyond
	// the first; Panics the worker panics recovered; Timeouts the
	// attempts aborted by the per-tile timeout. DegradedRules and
	// DegradedUncorrected count (tile, pass) results produced by the
	// degradation ladder after retries were exhausted; each such class
	// is also recorded in Degradations. ResumedTiles counts (tile,
	// pass) results restored from a checkpoint.
	Retries             int
	Panics              int
	Timeouts            int
	DegradedRules       int
	DegradedUncorrected int
	ResumedTiles        int
	// RemoteTiles counts (tile, pass) results solved by cluster workers
	// through Flow.ClassSolver, member-weighted like the library rungs.
	RemoteTiles  int
	Degradations []TileDegradation
	// Pattern-library accounting (DESIGN.md 5f). LibExactTiles and
	// LibSimilarTiles count (tile, pass) results served from the
	// cross-run library (exact class-key hit; orientation-similarity hit
	// that passed the halo-validity check). LibHaloRejects counts
	// similarity candidates rejected because the stored context ring
	// differed, LibMisses the probed classes that fell through to a full
	// solve, and LibAppends the freshly solved classes persisted for
	// future runs.
	LibExactTiles   int
	LibSimilarTiles int
	LibHaloRejects  int
	LibMisses       int
	LibAppends      int
	// Learned-prior accounting (DESIGN.md 5j). WarmTiles counts engine
	// runs the initial-bias prior warm-started (at least one fragment
	// seeded before iteration 0); WarmFragments the fragments seeded;
	// PriorSavedIters the estimated iterations those warm starts saved
	// against the prior's cold-corpus mean. All zero when Flow.Prior is
	// nil.
	WarmTiles       int
	WarmFragments   int
	PriorSavedIters int
}

// TileDegradation records one tile class that exhausted its model-OPC
// retry budget and fell back down the degradation ladder. Uncorrected
// fallbacks must be re-verified (ORC) before tape-out — the run
// completed, but those tiles carry drawn geometry.
type TileDegradation struct {
	// Pass is the context pass; Tile the representative tile core;
	// Members how many placements received the degraded result.
	Pass    int       `json:"pass"`
	Tile    geom.Rect `json:"tile"`
	Members int       `json:"members"`
	// Mode is "rules" (rule-based fallback) or "uncorrected".
	Mode string `json:"mode"`
	// Err is the final model-path error that forced the fallback.
	Err string `json:"err"`
}

// tileJob is one scheduled tile: its core rectangle and the target
// geometry clipped to it (computed once — the active geometry never
// changes across passes).
type tileJob struct {
	core   geom.Rect
	active []geom.Polygon
}

// CorrectWindowed runs model-based correction over an arbitrarily large
// flat layer by tiling: each tile corrects the geometry clipped to its
// core (cut edges frozen) with a halo of frozen context, so no
// simulation window exceeds the optics grid limit. This is the shape of
// every production full-chip OPC engine; the halo is the
// stitching-accuracy knob.
//
// Correction runs in two context passes: pass 1 corrects every tile
// against as-drawn halo context; pass 2 re-corrects against the pass-1
// corrected context. Without the second pass every tile assumes its
// neighbors stay drawn while they all move — the assembled mask then
// systematically overshoots (each tile's correction double-counts the
// proximity change its neighbors are also making).
//
// The scheduler is reuse-aware and incremental:
//
//   - Empty tiles are pruned at enumeration time using the grid index.
//   - Tiles whose active+context geometry is identical up to a
//     translation are corrected once: the equivalence-class
//     representative is corrected at a canonical origin and the result
//     is translated to every placement (exact — the imaging stack is
//     translation-invariant for integer shifts).
//   - Pass 2 re-corrects only dirty tiles: tiles whose halo ring
//     intersects geometry that moved in pass 1 (beyond Flow.DirtyEps).
//     With DirtyEps zero the skip is exact: a clean tile's context is
//     area-identical across passes, so re-correction would reproduce
//     its pass-1 result.
//   - The engine stops iterating once the EPE-RMS improvement drops
//     below Flow.ConvergeEps instead of always spending MaxIter.
//
// Per-tile results are collected by job index and concatenated in tile
// order, so the output polygon order is deterministic and identical
// between serial and parallel runs. Tiles run in parallel across CPUs
// when parallel is true.
//
// CorrectWindowed runs with a background context; CorrectWindowedCtx
// adds cancellation, per-tile isolation with retry and degradation, and
// checkpoint/resume — the resilience layer of DESIGN.md 5e.
func (f *Flow) CorrectWindowed(target []geom.Polygon, level Level, tile geom.Coord, parallel bool) (opc.Result, TileStats, error) {
	return f.CorrectWindowedCtx(context.Background(), target, level, tile, parallel)
}

// CorrectWindowedCtx is the resilient tiled driver. On top of the
// scheduler above:
//
//   - The run honors ctx (and Flow.Deadline, when positive): SIGINT,
//     deadline expiry, or caller cancellation stops the run between
//     tile attempts — and, via the engine's context, between model
//     iterations and imaging kernels — returning the context error.
//   - Each tile attempt is panic-isolated and bounded by
//     Flow.TileTimeout. A failed attempt is retried up to
//     Flow.TileRetries times with doubling context-aware backoff; a
//     tile still failing degrades to rule-based correction, and
//     finally to uncorrected-as-drawn, recorded in TileStats and the
//     goopc_tile_* series. Degradation never loses the run.
//   - When Flow.CheckpointPath is set, completed canonical tile-class
//     results are persisted periodically and at run end (also on
//     cancellation), and Flow.Resume restores them: resumed runs skip
//     finished classes and produce bit-identical output. Degraded
//     results are never checkpointed, so a fault-free resume converges
//     to the fault-free answer.
func (f *Flow) CorrectWindowedCtx(ctx context.Context, target []geom.Polygon, level Level, tile geom.Coord, parallel bool) (_ opc.Result, _ TileStats, retErr error) {
	var st TileStats
	if len(target) == 0 {
		return opc.Result{}, st, fmt.Errorf("core: empty target")
	}
	if f.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.Deadline)
		defer cancel()
	}
	if level == L0 {
		return opc.Uncorrected(target), st, nil
	}
	if level == L1 {
		// Rule-based correction is local geometry: no tiling needed.
		t0 := time.Now()
		res, err := f.Rules.ApplyCtx(ctx, target)
		if err != nil {
			return opc.Result{}, st, fmt.Errorf("core: %w", err)
		}
		st.Seconds = time.Since(t0).Seconds()
		st.Polygons = len(target)
		st.Corrected = len(res.Corrected)
		st.Tiles = 1
		return res, st, nil
	}
	if tile < 2*f.Ambit {
		return opc.Result{}, st, fmt.Errorf("core: tile %d smaller than twice the ambit %d", tile, f.Ambit)
	}
	st.Polygons = len(target)
	halo := f.Ambit
	passes := f.TilePasses
	if passes < 1 {
		passes = 2
	}
	if level == L2 {
		// Single-iteration correction moves edges too little for
		// context double-counting to matter; one pass.
		passes = 1
	}
	st.Passes = passes

	// Cross-run pattern library (DESIGN.md 5f). A shared Flow.PatLib
	// (the opcd server's) takes precedence; otherwise PatternLibPath
	// opens a run-scoped library. An incompatible fingerprint yields a
	// nil session — every rung then misses and the run solves normally.
	plib := f.PatLib
	if plib == nil && f.PatternLibPath != "" {
		owned, perr := patlib.Open(f.PatternLibPath, f.PatLibReadOnly)
		if perr != nil {
			return opc.Result{}, st, fmt.Errorf("core: pattern library %s: %w", f.PatternLibPath, perr)
		}
		defer owned.Close()
		plib = owned
	}
	var psess *patlib.Session
	if plib != nil {
		psess = plib.Session(f.patlibFingerprint(tile))
	}

	// Checkpoint/resume setup. The fingerprint ties artifacts to this
	// exact (target, level, settings) combination. needCanon gates the
	// canonical-key serialization (dedup or checkpoint), needHash the
	// fixed-size digest checkpoint storage and the pattern library use.
	var ckpt *ckptWriter
	needHash := f.CheckpointPath != "" || f.Resume != nil || psess != nil || f.ClassSolver != nil
	needCanon := !f.DisableDedup || needHash
	if needHash {
		fp := f.runFingerprint(target, level, tile, passes)
		seed := f.Resume
		if seed != nil && seed.Fingerprint != fp {
			return opc.Result{}, st, fmt.Errorf("core: checkpoint fingerprint %.12s.. does not match run %.12s.. (different target or settings): %w",
				seed.Fingerprint, fp, ErrCheckpointMismatch)
		}
		if seed == nil {
			seed = NewCheckpoint(fp, level.String(), tile)
		}
		ckpt = newCkptWriter(seed, f.CheckpointPath, f.CheckpointEvery, f.Tracer)
		// Final flush on every exit path — success, failure, SIGINT —
		// so completed work always survives the process.
		defer func() {
			if ferr := ckpt.flush(); ferr != nil && retErr == nil {
				retErr = ferr
			}
		}()
	}

	idx := geom.NewGridIndex(tile)
	var bounds geom.Rect
	for i, p := range target {
		bb := p.BBox()
		idx.Insert(bb, int32(i))
		if i == 0 {
			bounds = bb
		} else {
			bounds = bounds.Union(bb)
		}
	}

	// Tile enumeration with empty-tile pruning: the index proves most
	// empty tiles empty from bounding boxes alone; the clip catches
	// boxes that touch a core without contributing geometry.
	var jobs []tileJob
	for y := bounds.Y0; y < bounds.Y1; y += tile {
		for x := bounds.X0; x < bounds.X1; x += tile {
			core := geom.Rect{X0: x, Y0: y, X1: x + tile, Y1: y + tile}
			if len(idx.CollectIDs(core)) == 0 {
				st.EmptyPruned++
				continue
			}
			active := clipToRegion(target, idx, core, geom.RegionFromRects(core))
			if len(active) == 0 {
				st.EmptyPruned++
				continue
			}
			jobs = append(jobs, tileJob{core: core, active: active})
		}
	}
	st.Tiles = len(jobs)
	if len(jobs) == 0 {
		return opc.Result{}, st, fmt.Errorf("core: no tiles contain geometry")
	}
	mRuns.Inc()
	mTilesScheduled.Add(int64(len(jobs)))
	mTilesEmptyPruned.Add(int64(st.EmptyPruned))

	// Flight recorder (DESIGN.md 5h). The scheduler's serial stages emit
	// on worker 0; each pool goroutine emits on its own ring. A nil
	// Flow.Tracer yields nil handles and every Emit below is a no-op.
	sched := f.Tracer.Worker(0)

	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(jobs) {
			workers = len(jobs)
		}
	}

	kh0, km0 := f.Sim.KernelCacheStats()
	t0 := time.Now()

	// Per-tile state carried across passes.
	results := make([][]geom.Polygon, len(jobs))
	tileRMS := make([]float64, len(jobs))
	// xorBase is what each tile's result is diffed against to find
	// moved geometry: the drawn active before pass 1, the previous
	// pass's result afterwards.
	xorBase := make([][]geom.Polygon, len(jobs))
	for i := range jobs {
		xorBase[i] = jobs[i].active
	}
	var movedIdx *geom.GridIndex

	// Per-run tile progress, mirrored to Flow.Progress subscribers (the
	// global goopc_tiles_done gauge stays process-wide).
	var doneTiles atomic.Int64
	progress := func(pass, add int) {
		if add > 0 {
			doneTiles.Add(int64(add))
		}
		if f.Progress != nil {
			f.Progress(ProgressEvent{
				Pass: pass, Passes: passes,
				DoneTiles: int(doneTiles.Load()), TotalTiles: len(jobs),
			})
		}
	}

	// Context source: the drawn layer on pass 1, the previous pass's
	// corrected layer afterwards.
	ctxPolys := target
	ctxIdx := idx
	for pass := 1; pass <= passes; pass++ {
		if cerr := ctx.Err(); cerr != nil {
			st.Seconds = time.Since(t0).Seconds()
			return opc.Result{}, st, fmt.Errorf("core: pass %d: %w", pass, cerr)
		}
		passSpan := f.Span.Start(fmt.Sprintf("tile-pass-%d", pass))
		mPasses.Inc()
		mTilesTotal.Set(float64(len(jobs)))
		mTilesDone.Set(0)
		doneTiles.Store(0)
		progress(pass, 0)
		// Stage 1 (serial, cheap): dirty filtering and dedup classing.
		// A class groups tiles whose active+context geometry is
		// identical after translating each tile origin to (0,0); the
		// representative is the lowest job index, so classing is
		// deterministic and independent of worker scheduling. The dedup
		// map uses the exact canonical encoding (no collisions); the
		// checkpoint key is its fixed-size hash.
		type tileClass struct {
			rep     int
			members []int
			key     string
		}
		var classes []*tileClass
		classOf := map[string]int{}
		contexts := make([][]geom.Polygon, len(jobs))
		var keyBuf []byte
		for i := range jobs {
			core := jobs[i].core
			window := core.Grow(halo)
			sched.Emit(trace.TileScheduled, pass, core, 1, 0, 0, "")
			if pass > 1 && !f.DisableDirtySkip && !ringDirty(movedIdx, window, core) {
				// Context unchanged within the halo: the engine would
				// reproduce the previous pass's result. Keep it.
				sched.Emit(trace.TileCleanSkip, pass, core, 1, 0, 0, "")
				st.CleanTiles++
				mTilesClean.Inc()
				mTilesDone.Add(1)
				progress(pass, 1)
				continue
			}
			ring := geom.RegionFromRects(window).Subtract(geom.RegionFromRects(core))
			contexts[i] = clipToRegion(ctxPolys, ctxIdx, window, ring)
			var key string
			if needCanon {
				origin := geom.Pt(core.X0, core.Y0)
				keyBuf = keyBuf[:0]
				keyBuf = geom.AppendCanonicalPolygons(keyBuf, jobs[i].active, origin)
				keyBuf = geom.AppendCanonicalPolygons(keyBuf, contexts[i], origin)
				if needHash {
					key = classKeyHash(keyBuf)
				}
			}
			if f.DisableDedup {
				classes = append(classes, &tileClass{rep: i, members: []int{i}, key: key})
				continue
			}
			exact := string(keyBuf)
			if ci, ok := classOf[exact]; ok {
				classes[ci].members = append(classes[ci].members, i)
			} else {
				classOf[exact] = len(classes)
				classes = append(classes, &tileClass{rep: i, members: []int{i}, key: key})
			}
		}

		// Distribution seam (DESIGN.md 5i): classes the resume checkpoint
		// does not already cover are offered to the external class solver
		// — the cluster coordinator — in canonical frame before the local
		// pool runs. The solver is best-effort: any class it does not
		// return falls through to the local ladder below, so a degenerate
		// cluster costs nothing beyond this call.
		var remote map[string]CheckpointEntry
		if f.ClassSolver != nil && ctx.Err() == nil {
			reqs := make([]ClassSolveRequest, 0, len(classes))
			for _, c := range classes {
				if _, ok := ckptLookup(ckpt, pass, c.key); ok {
					continue
				}
				j := jobs[c.rep]
				shift := geom.Pt(-j.core.X0, -j.core.Y0)
				reqs = append(reqs, ClassSolveRequest{
					Pass:   pass,
					Key:    c.key,
					Core:   j.core.Translate(shift),
					Active: geom.TranslatePolygons(j.active, shift),
					Halo:   geom.TranslatePolygons(contexts[c.rep], shift),
				})
			}
			if len(reqs) > 0 {
				remote = f.ClassSolver(ctx, level, tile, reqs)
			}
		}

		// Stage 2 (parallel): correct one representative per class.
		// Multi-member classes correct at the canonical origin so every
		// placement receives the identical solution; singletons correct
		// in place. Each class runs through the resilience ladder
		// (retries, then rule-based and uncorrected fallbacks) inside
		// correctClass, or is restored from the resume checkpoint.
		classRes := make([]classResult, len(classes))
		var mu sync.Mutex
		var firstErr error
		classCh := make(chan int)
		var wg sync.WaitGroup
		nw := workers
		if nw > len(classes) {
			nw = len(classes)
		}
		if nw < 1 {
			nw = 1
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(wid int32) {
				defer wg.Done()
				// Worker 0 is the coordinator's ring; pool goroutines
				// record on rings 1..nw.
				tw := f.Tracer.Worker(wid + 1)
				for ci := range classCh {
					c := classes[ci]
					if cerr := ctx.Err(); cerr != nil {
						// Run cancelled: drain the queue without working.
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("core: pass %d: %w", pass, cerr)
						}
						mu.Unlock()
						continue
					}
					j := jobs[c.rep]
					core := j.core
					active := j.active
					haloPolys := contexts[c.rep]
					canonical := len(c.members) > 1
					origin := geom.Pt(core.X0, core.Y0)
					if canonical {
						// Canonical placement: tile origin at (0,0).
						shift := geom.Pt(-core.X0, -core.Y0)
						core = core.Translate(shift)
						active = geom.TranslatePolygons(active, shift)
						haloPolys = geom.TranslatePolygons(haloPolys, shift)
					}
					if ent, ok := ckptLookup(ckpt, pass, c.key); ok {
						// Finished in a previous (checkpointed) run:
						// restore instead of correcting. Entries are
						// canonical; singletons translate back in place.
						tw.Emit(trace.TileResumed, pass, j.core, len(c.members), ent.Iters, ent.RMS, "")
						cr := classResult{rms: ent.RMS, iters: ent.Iters, resumed: true}
						if canonical {
							cr.polys = ent.Polys
						} else {
							cr.polys = geom.TranslatePolygons(ent.Polys, origin)
						}
						classRes[ci] = cr
						mTilesDone.Add(float64(len(c.members)))
						progress(pass, len(c.members))
						continue
					}
					if ent, ok := remote[c.key]; ok {
						// Solved by a cluster worker: entries arrive in the
						// canonical checkpoint format, so folding one is the
						// resume path with a different source. Remote entries
						// are always clean engine solutions (workers report
						// degraded classes as unsolved), so they are
						// checkpoint and library material like a local solve.
						tw.Emit(trace.TileRemote, pass, j.core, len(c.members), ent.Iters, ent.RMS, "")
						cr := classResult{rms: ent.RMS, iters: ent.Iters, remote: true}
						if canonical {
							cr.polys = ent.Polys
						} else {
							cr.polys = geom.TranslatePolygons(ent.Polys, origin)
						}
						classRes[ci] = cr
						if psess != nil {
							cActive, cHalo := active, haloPolys
							if !canonical {
								shift := geom.Pt(-core.X0, -core.Y0)
								cActive = geom.TranslatePolygons(active, shift)
								cHalo = geom.TranslatePolygons(haloPolys, shift)
							}
							psess.Append(level.String(), c.key, tile, cActive, cHalo, ent.Polys, ent.RMS, ent.Iters)
						}
						if ckpt != nil {
							if err := ckpt.add(pass, c.key, ent); err != nil {
								mu.Lock()
								if firstErr == nil {
									firstErr = err
								}
								mu.Unlock()
							}
						}
						mTilesDone.Add(float64(len(c.members)))
						progress(pass, len(c.members))
						continue
					}
					if polys, rms, iters, ok := psess.Lookup(level.String(), c.key); ok {
						// Cross-run exact hit: the library stores canonical
						// (frame-origin) solutions under the same contract
						// as a checkpoint entry, so reuse is bit-identical.
						tw.Emit(trace.TileLibExact, pass, j.core, len(c.members), iters, rms, "")
						cr := classResult{rms: rms, iters: iters, libExact: true}
						if canonical {
							cr.polys = polys
						} else {
							cr.polys = geom.TranslatePolygons(polys, origin)
						}
						classRes[ci] = cr
						if ckpt != nil {
							if err := ckpt.add(pass, c.key, CheckpointEntry{Polys: polys, RMS: rms, Iters: iters}); err != nil {
								mu.Lock()
								if firstErr == nil {
									firstErr = err
								}
								mu.Unlock()
							}
						}
						mTilesDone.Add(float64(len(c.members)))
						progress(pass, len(c.members))
						continue
					}
					// Canonical (frame-origin) geometry for the library's
					// similarity probe and the post-solve append; classes
					// with multiple members are already canonical.
					cActive, cHalo := active, haloPolys
					if psess != nil && !canonical {
						shift := geom.Pt(-core.X0, -core.Y0)
						cActive = geom.TranslatePolygons(active, shift)
						cHalo = geom.TranslatePolygons(haloPolys, shift)
					}
					if sr, ok := psess.Similar(level.String(), tile, cActive, cHalo); ok {
						// Similarity hit: a stored solution matched under a
						// frame-preserving orientation and passed the
						// halo-validity check. The carried solution is
						// engine-equivalent within ConvergeEps, not
						// bit-identical — fragmentation is not orientation-
						// covariant — so it is accounted separately.
						tw.Emit(trace.TileLibSimilar, pass, j.core, len(c.members), sr.Iters, sr.RMS, "")
						cr := classResult{rms: sr.RMS, iters: sr.Iters, libSimilar: true}
						if canonical {
							cr.polys = sr.Polys
						} else {
							cr.polys = geom.TranslatePolygons(sr.Polys, origin)
						}
						classRes[ci] = cr
						if ckpt != nil {
							if err := ckpt.add(pass, c.key, CheckpointEntry{Polys: sr.Polys, RMS: sr.RMS, Iters: sr.Iters}); err != nil {
								mu.Lock()
								if firstErr == nil {
									firstErr = err
								}
								mu.Unlock()
							}
						}
						mTilesDone.Add(float64(len(c.members)))
						progress(pass, len(c.members))
						continue
					}
					window := core.Grow(halo)
					// Everything is clipped to core + halo, so the window
					// never exceeds tile + 2*halo regardless of how long
					// the original wires are.
					mWorkersBusy.Add(1)
					tw.Emit(trace.SolveBegin, pass, j.core, len(c.members), 0, 0, "")
					tc0 := time.Now()
					cr := f.correctClass(ctx, level, active, haloPolys, core, window, tw, pass, j.core)
					mTileSeconds.Observe(time.Since(tc0).Seconds())
					solveDetail := cr.degraded
					if cr.err != nil {
						solveDetail = "aborted: " + cr.err.Error()
					}
					tw.Emit(trace.SolveEnd, pass, j.core, len(c.members), cr.iters, cr.rms, solveDetail)
					if cr.degraded != "" {
						tw.Emit(trace.TileDegrade, pass, j.core, len(c.members), 0, 0, cr.degraded+": "+cr.degErr)
					}
					mWorkersBusy.Add(-1)
					mTilesDone.Add(float64(len(c.members)))
					progress(pass, len(c.members))
					if cr.err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("core: pass %d tile %v: %w", pass, jobs[c.rep].core, cr.err)
						}
						mu.Unlock()
						continue
					}
					classRes[ci] = cr
					if (ckpt != nil || psess != nil) && cr.degraded == "" {
						// Persist the canonical solution — to the checkpoint
						// for resume, and to the pattern library for future
						// runs. Degraded results are skipped on purpose: a
						// resume re-attempts them, so fault-free resumes
						// reproduce the fault-free output, and the library
						// never serves a fallback as a solution. Similarity-
						// derived results never reach here, so the library
						// only ever holds engine-solved patterns (no
						// derived-from-derived drift).
						canonPolys := cr.polys
						if !canonical {
							canonPolys = geom.TranslatePolygons(cr.polys, geom.Pt(-origin.X, -origin.Y))
						}
						psess.Append(level.String(), c.key, tile, cActive, cHalo, canonPolys, cr.rms, cr.iters)
						if ckpt != nil {
							err := ckpt.add(pass, c.key, CheckpointEntry{Polys: canonPolys, RMS: cr.rms, Iters: cr.iters})
							if err != nil {
								mu.Lock()
								if firstErr == nil {
									firstErr = err
								}
								mu.Unlock()
							}
						}
					}
				}
			}(int32(w))
		}
		for ci := range classes {
			classCh <- ci
		}
		close(classCh)
		wg.Wait()
		if firstErr != nil {
			passSpan.End()
			st.Seconds = time.Since(t0).Seconds()
			return opc.Result{}, st, firstErr
		}

		// Stage 3 (serial): place every class member by translating the
		// canonical solution to its tile origin, and fold the class
		// outcomes into the run statistics (serial, so stats and
		// metrics are deterministic regardless of worker scheduling).
		for ci, c := range classes {
			cr := classRes[ci]
			st.Retries += cr.retries
			st.Panics += cr.panics
			st.Timeouts += cr.timeouts
			if cr.retries > 0 {
				mTileRetries.Add(int64(cr.retries))
			}
			if cr.panics > 0 {
				mTilePanics.Add(int64(cr.panics))
			}
			if cr.timeouts > 0 {
				mTileTimeouts.Add(int64(cr.timeouts))
			}
			if cr.resumed {
				st.ResumedTiles += len(c.members)
				mTilesResumed.Add(int64(len(c.members)))
			} else if cr.remote {
				st.RemoteTiles += len(c.members)
				mTilesRemote.Add(int64(len(c.members)))
			} else if cr.libExact {
				st.LibExactTiles += len(c.members)
			} else if cr.libSimilar {
				st.LibSimilarTiles += len(c.members)
			} else {
				st.CorrectedTiles++
				mTilesCorrected.Inc()
				st.Iterations += cr.iters
				if cr.warmFrags > 0 && f.Prior != nil {
					st.WarmTiles++
					st.WarmFragments += cr.warmFrags
					st.PriorSavedIters += f.Prior.ObserveWarmRun(cr.iters)
				}
				if len(c.members) > 1 {
					st.ReusedTiles += len(c.members) - 1
					mTilesReused.Add(int64(len(c.members) - 1))
					sched.Emit(trace.TileDedup, pass, jobs[c.rep].core, len(c.members)-1, cr.iters, cr.rms, "")
				}
			}
			switch cr.degraded {
			case degradeRules:
				st.DegradedRules += len(c.members)
			case degradeUncorrected:
				st.DegradedUncorrected += len(c.members)
			}
			if cr.degraded != "" {
				mTilesDegraded.Add(int64(len(c.members)))
				st.Degradations = append(st.Degradations, TileDegradation{
					Pass: pass, Tile: jobs[c.rep].core, Members: len(c.members),
					Mode: cr.degraded, Err: cr.degErr,
				})
			}
			if len(c.members) == 1 {
				i := c.rep
				results[i] = cr.polys
				tileRMS[i] = cr.rms
				continue
			}
			for _, i := range c.members {
				origin := geom.Pt(jobs[i].core.X0, jobs[i].core.Y0)
				results[i] = geom.TranslatePolygons(cr.polys, origin)
				tileRMS[i] = cr.rms
			}
		}

		// Prepare the next pass: moved-geometry index for the dirty
		// filter, and the corrected layer as the new context source.
		if pass < passes {
			movedIdx = geom.NewGridIndex(tile)
			n := int32(0)
			for i := range jobs {
				if sameSlice(results[i], xorBase[i]) {
					continue // clean reuse: nothing moved
				}
				moved := geom.RegionFromPolygons(results[i]...).
					Xor(geom.RegionFromPolygons(xorBase[i]...))
				for _, r := range moved.Rects() {
					// DirtyEps is the stitching tolerance: an edge that
					// moved by no more than eps (an XOR sliver thinner
					// than eps) is not propagated as dirty-making.
					if f.DirtyEps > 0 && (r.W() <= f.DirtyEps || r.H() <= f.DirtyEps) {
						continue
					}
					movedIdx.Insert(r, n)
					n++
				}
				xorBase[i] = results[i]
			}
			ctxPolys = ctxPolys[:0:0]
			for i := range jobs {
				ctxPolys = append(ctxPolys, results[i]...)
			}
			ctxIdx = geom.NewGridIndex(tile)
			for i, p := range ctxPolys {
				ctxIdx.Insert(p.BBox(), int32(i))
			}
		}
		passSpan.End()
	}

	var out opc.Result
	for i := range jobs {
		out.Corrected = append(out.Corrected, results[i]...)
	}
	st.WorstRMS = 0
	for _, rms := range tileRMS {
		if rms > st.WorstRMS {
			st.WorstRMS = rms
		}
	}
	if psess != nil {
		// Per-tile hit accounting folded in stage 3; the session-level
		// probe counters land here once per run.
		st.LibHaloRejects = int(psess.HaloRejects.Load())
		st.LibMisses = int(psess.Misses.Load())
		st.LibAppends = int(psess.Appends.Load())
	}
	kh1, km1 := f.Sim.KernelCacheStats()
	st.KernelHits, st.KernelMisses = kh1-kh0, km1-km0
	st.Seconds = time.Since(t0).Seconds()
	st.Corrected = len(out.Corrected)
	return out, st, nil
}

// Degradation-ladder modes.
const (
	degradeRules       = "rules"
	degradeUncorrected = "uncorrected"
)

// classResult is one tile class's outcome in one pass: the corrected
// polygons plus the resilience accounting the serial stage 3 folds into
// TileStats.
type classResult struct {
	polys                     []geom.Polygon
	rms                       float64
	iters                     int
	warmFrags                 int
	retries, panics, timeouts int
	// degraded is "", degradeRules or degradeUncorrected; degErr the
	// model-path error that forced the fallback.
	degraded string
	degErr   string
	// resumed marks a result restored from a checkpoint; remote one
	// solved by a cluster worker; libExact and libSimilar mark results
	// served from the cross-run pattern library.
	resumed              bool
	remote               bool
	libExact, libSimilar bool
	// err is fatal (run cancelled / checkpoint mismatch): it aborts
	// the run instead of engaging the degradation ladder.
	err error
}

// correctClass runs the resilience ladder for one tile class: up to
// 1+TileRetries panic-isolated, timeout-bounded model attempts with
// doubling backoff, then rule-based fallback, then uncorrected
// passthrough. Only run cancellation aborts; everything else degrades.
// tw is the worker's flight-recorder handle (nil-safe) and at the
// class representative's actual core, for the retry/timeout events.
func (f *Flow) correctClass(ctx context.Context, level Level, active, haloPolys []geom.Polygon, core, window geom.Rect, tw *trace.Worker, pass int, at geom.Rect) classResult {
	var cr classResult
	attempts := 1 + f.TileRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if cerr := ctx.Err(); cerr != nil {
			cr.err = cerr
			return cr
		}
		if a > 0 {
			cr.retries++
			detail := ""
			if lastErr != nil {
				detail = lastErr.Error()
			}
			tw.Emit(trace.TileRetry, pass, at, 1, 0, 0, detail)
			if !sleepBackoff(ctx, f.RetryBackoff<<(a-1)) {
				cr.err = ctx.Err()
				return cr
			}
		}
		res, conv, aerr, panicked := f.tileAttempt(ctx, level, active, haloPolys, core, window)
		if panicked {
			cr.panics++
		}
		if aerr == nil {
			cr.polys = res.Corrected
			cr.rms = conv.Final().RMS
			cr.iters = conv.Iterations
			cr.warmFrags = conv.WarmStarted
			return cr
		}
		if ctx.Err() != nil {
			// The whole run was cancelled, not just this attempt:
			// abort instead of degrading.
			cr.err = ctx.Err()
			return cr
		}
		if errors.Is(aerr, context.DeadlineExceeded) {
			cr.timeouts++
			tw.Emit(trace.TileTimeout, pass, at, 1, 0, 0, aerr.Error())
		}
		lastErr = aerr
	}
	// Degradation step 1: rule-based OPC. Pure geometry — no imaging —
	// so it survives most of what breaks the model path. The halo
	// context is dropped (rule biasing probes only within the active
	// geometry) and cut edges are not frozen; acceptable for a
	// fallback whose tiles are flagged for re-verification.
	if polys, rerr := f.rulesFallback(ctx, active); rerr == nil {
		cr.polys = polys
		cr.degraded = degradeRules
		cr.degErr = lastErr.Error()
		return cr
	} else if ctx.Err() != nil {
		cr.err = ctx.Err()
		return cr
	}
	// Degradation step 2: pass the drawn geometry through uncorrected.
	// The run completes; the tile must be caught by post-OPC
	// verification (the TileStats.Degradations record drives that).
	cr.polys = active
	cr.degraded = degradeUncorrected
	cr.degErr = lastErr.Error()
	return cr
}

// tileAttempt runs one panic-isolated, timeout-bounded engine attempt
// on a tile class, probing the "tile" fault site first.
func (f *Flow) tileAttempt(ctx context.Context, level Level, active, haloPolys []geom.Polygon, core, window geom.Rect) (res opc.Result, conv model.Convergence, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("tile worker panic: %v", r)
		}
	}()
	tctx := ctx
	if f.TileTimeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, f.TileTimeout)
		defer cancel()
	}
	if perr := f.FaultPlan.Probe(tctx, "tile"); perr != nil {
		return opc.Result{}, model.Convergence{}, perr, false
	}
	eng := model.New(f.Sim, f.Threshold)
	eng.Spec = f.Spec
	eng.MRC = f.MRC
	eng.Damping = f.Damping
	eng.RMSEps = f.ConvergeEps
	if level == L2 {
		eng.MaxIter = f.ModelIter1
	} else {
		eng.MaxIter = f.ModelIterFull
	}
	eng.Context = haloPolys
	freeze := core
	eng.FreezeBoundary = &freeze
	eng.Ctx = tctx
	if f.Prior != nil {
		// Signatures see the tile's drawn geometry plus its halo ring —
		// a fragment near the core boundary captures the same
		// environment it would in an untiled run.
		env := active
		if len(haloPolys) > 0 {
			env = append(append(make([]geom.Polygon, 0, len(active)+len(haloPolys)), active...), haloPolys...)
		}
		eng.InitialBias = f.Prior.InitialBias(env)
	}
	res, conv, err = eng.Correct(active, window)
	return res, conv, err, false
}

// rulesFallback applies rule-based OPC to a tile's active geometry,
// panic-isolated and fault-probed ("rules" site) like the model path.
func (f *Flow) rulesFallback(ctx context.Context, active []geom.Polygon) (polys []geom.Polygon, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rules fallback panic: %v", r)
		}
	}()
	if perr := f.FaultPlan.Probe(ctx, "rules"); perr != nil {
		return nil, perr
	}
	res, err := f.Rules.ApplyCtx(ctx, active)
	if err != nil {
		return nil, err
	}
	return res.Corrected, nil
}

// sleepBackoff sleeps for d honoring ctx; reports whether the sleep
// completed (false means the run was cancelled mid-backoff).
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ckptLookup consults the (resume-seeded) checkpoint for a finished
// class result.
func ckptLookup(w *ckptWriter, pass int, key string) (CheckpointEntry, bool) {
	if w == nil || key == "" {
		return CheckpointEntry{}, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ck.lookup(pass, key)
}

// sameSlice reports whether two polygon slices are the same slice (the
// clean-reuse case, where a tile's result was carried over unchanged).
func sameSlice(a, b []geom.Polygon) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// ringDirty reports whether any moved rectangle overlaps the tile's
// halo ring (window minus core) with positive area. Movement fully
// inside the core is invisible to this tile: its context is clipped to
// the ring, and its own active geometry restarts from the drawn layer
// every pass.
func ringDirty(moved *geom.GridIndex, window, core geom.Rect) bool {
	dirty := false
	moved.Query(window, func(box geom.Rect, _ int32) bool {
		o := box.Intersect(window)
		if o.Empty() {
			return true
		}
		if o.X0 >= core.X0 && o.Y0 >= core.Y0 && o.X1 <= core.X1 && o.Y1 <= core.Y1 {
			return true
		}
		dirty = true
		return false
	})
	return dirty
}

// EstimateTiles counts the grid tiles a windowed correction of target
// at this tile size would consider non-empty, using bounding boxes
// only. It is a cheap upper bound on TileStats.Tiles (a box may touch a
// tile core without contributing clipped geometry) — the opcd server
// uses it for per-job tile-budget admission before any correction work
// is spent. Zero or negative tile sizes and empty targets count zero.
func EstimateTiles(target []geom.Polygon, tile geom.Coord) int {
	if len(target) == 0 || tile <= 0 {
		return 0
	}
	idx := geom.NewGridIndex(tile)
	var bounds geom.Rect
	for i, p := range target {
		bb := p.BBox()
		idx.Insert(bb, int32(i))
		if i == 0 {
			bounds = bb
		} else {
			bounds = bounds.Union(bb)
		}
	}
	n := 0
	for y := bounds.Y0; y < bounds.Y1; y += tile {
		for x := bounds.X0; x < bounds.X1; x += tile {
			if len(idx.CollectIDs(geom.Rect{X0: x, Y0: y, X1: x + tile, Y1: y + tile})) > 0 {
				n++
			}
		}
	}
	return n
}

// clipToRegion gathers the polygons touching the query window and clips
// them to the region (fast-pathing polygons already inside it).
func clipToRegion(polys []geom.Polygon, idx *geom.GridIndex, query geom.Rect, clip geom.Region) []geom.Polygon {
	cb := clip.BBox()
	var out []geom.Polygon
	for _, id := range idx.CollectIDs(query) {
		p := polys[id]
		bb := p.BBox()
		if !bb.Touches(cb) {
			continue
		}
		// Fast path: fully inside a single-rect clip.
		if clip.Count() == 1 {
			r := clip.Rects()[0]
			if bb.X0 >= r.X0 && bb.Y0 >= r.Y0 && bb.X1 <= r.X1 && bb.Y1 <= r.Y1 {
				out = append(out, p)
				continue
			}
		}
		pieces := geom.RegionFromPolygons(p).Intersect(clip).Polygons()
		out = append(out, pieces...)
	}
	return out
}
