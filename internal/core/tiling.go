package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/opc/model"
)

// TileStats reports a windowed full-layer correction run.
type TileStats struct {
	// Tiles is the number of scheduled tiles: grid tiles that actually
	// contain target geometry. EmptyPruned counts the grid tiles
	// dropped at enumeration time because the spatial index proved them
	// empty.
	Tiles       int
	EmptyPruned int
	Polygons    int
	Corrected   int
	// CorrectedTiles counts (tile, pass) engine runs; ReusedTiles the
	// (tile, pass) results obtained by translating a deduplicated
	// equivalence-class representative; CleanTiles the pass-2+ tiles
	// skipped because no pass-1 movement reached their halo.
	CorrectedTiles int
	ReusedTiles    int
	CleanTiles     int
	// Iterations is the total model-iteration count over all engine
	// runs — the quantity the convergence early-exit shrinks.
	Iterations int
	// KernelHits and KernelMisses are the simulator kernel-cache
	// statistics accumulated during this run.
	KernelHits, KernelMisses int64
	// Passes is the number of context passes run.
	Passes int
	// Seconds is the wall-clock correction time (all tiles, all passes).
	Seconds float64
	// WorstRMS is the worst per-tile final EPE RMS of the last pass.
	WorstRMS float64
}

// tileJob is one scheduled tile: its core rectangle and the target
// geometry clipped to it (computed once — the active geometry never
// changes across passes).
type tileJob struct {
	core   geom.Rect
	active []geom.Polygon
}

// CorrectWindowed runs model-based correction over an arbitrarily large
// flat layer by tiling: each tile corrects the geometry clipped to its
// core (cut edges frozen) with a halo of frozen context, so no
// simulation window exceeds the optics grid limit. This is the shape of
// every production full-chip OPC engine; the halo is the
// stitching-accuracy knob.
//
// Correction runs in two context passes: pass 1 corrects every tile
// against as-drawn halo context; pass 2 re-corrects against the pass-1
// corrected context. Without the second pass every tile assumes its
// neighbors stay drawn while they all move — the assembled mask then
// systematically overshoots (each tile's correction double-counts the
// proximity change its neighbors are also making).
//
// The scheduler is reuse-aware and incremental:
//
//   - Empty tiles are pruned at enumeration time using the grid index.
//   - Tiles whose active+context geometry is identical up to a
//     translation are corrected once: the equivalence-class
//     representative is corrected at a canonical origin and the result
//     is translated to every placement (exact — the imaging stack is
//     translation-invariant for integer shifts).
//   - Pass 2 re-corrects only dirty tiles: tiles whose halo ring
//     intersects geometry that moved in pass 1 (beyond Flow.DirtyEps).
//     With DirtyEps zero the skip is exact: a clean tile's context is
//     area-identical across passes, so re-correction would reproduce
//     its pass-1 result.
//   - The engine stops iterating once the EPE-RMS improvement drops
//     below Flow.ConvergeEps instead of always spending MaxIter.
//
// Per-tile results are collected by job index and concatenated in tile
// order, so the output polygon order is deterministic and identical
// between serial and parallel runs. Tiles run in parallel across CPUs
// when parallel is true.
func (f *Flow) CorrectWindowed(target []geom.Polygon, level Level, tile geom.Coord, parallel bool) (opc.Result, TileStats, error) {
	var st TileStats
	if len(target) == 0 {
		return opc.Result{}, st, fmt.Errorf("core: empty target")
	}
	if level == L0 {
		return opc.Uncorrected(target), st, nil
	}
	if level == L1 {
		// Rule-based correction is local geometry: no tiling needed.
		t0 := time.Now()
		res := f.Rules.Apply(target)
		st.Seconds = time.Since(t0).Seconds()
		st.Polygons = len(target)
		st.Corrected = len(res.Corrected)
		st.Tiles = 1
		return res, st, nil
	}
	if tile < 2*f.Ambit {
		return opc.Result{}, st, fmt.Errorf("core: tile %d smaller than twice the ambit %d", tile, f.Ambit)
	}
	st.Polygons = len(target)
	halo := f.Ambit
	passes := f.TilePasses
	if passes < 1 {
		passes = 2
	}
	if level == L2 {
		// Single-iteration correction moves edges too little for
		// context double-counting to matter; one pass.
		passes = 1
	}
	st.Passes = passes

	idx := geom.NewGridIndex(tile)
	var bounds geom.Rect
	for i, p := range target {
		bb := p.BBox()
		idx.Insert(bb, int32(i))
		if i == 0 {
			bounds = bb
		} else {
			bounds = bounds.Union(bb)
		}
	}

	// Tile enumeration with empty-tile pruning: the index proves most
	// empty tiles empty from bounding boxes alone; the clip catches
	// boxes that touch a core without contributing geometry.
	var jobs []tileJob
	for y := bounds.Y0; y < bounds.Y1; y += tile {
		for x := bounds.X0; x < bounds.X1; x += tile {
			core := geom.Rect{X0: x, Y0: y, X1: x + tile, Y1: y + tile}
			if len(idx.CollectIDs(core)) == 0 {
				st.EmptyPruned++
				continue
			}
			active := clipToRegion(target, idx, core, geom.RegionFromRects(core))
			if len(active) == 0 {
				st.EmptyPruned++
				continue
			}
			jobs = append(jobs, tileJob{core: core, active: active})
		}
	}
	st.Tiles = len(jobs)
	if len(jobs) == 0 {
		return opc.Result{}, st, fmt.Errorf("core: no tiles contain geometry")
	}
	mRuns.Inc()
	mTilesScheduled.Add(int64(len(jobs)))
	mTilesEmptyPruned.Add(int64(st.EmptyPruned))

	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(jobs) {
			workers = len(jobs)
		}
	}

	kh0, km0 := f.Sim.KernelCacheStats()
	t0 := time.Now()

	// Per-tile state carried across passes.
	results := make([][]geom.Polygon, len(jobs))
	tileRMS := make([]float64, len(jobs))
	// xorBase is what each tile's result is diffed against to find
	// moved geometry: the drawn active before pass 1, the previous
	// pass's result afterwards.
	xorBase := make([][]geom.Polygon, len(jobs))
	for i := range jobs {
		xorBase[i] = jobs[i].active
	}
	var movedIdx *geom.GridIndex

	// Context source: the drawn layer on pass 1, the previous pass's
	// corrected layer afterwards.
	ctxPolys := target
	ctxIdx := idx
	for pass := 1; pass <= passes; pass++ {
		passSpan := f.Span.Start(fmt.Sprintf("tile-pass-%d", pass))
		mPasses.Inc()
		mTilesTotal.Set(float64(len(jobs)))
		mTilesDone.Set(0)
		// Stage 1 (serial, cheap): dirty filtering and dedup classing.
		// A class groups tiles whose active+context geometry is
		// identical after translating each tile origin to (0,0); the
		// representative is the lowest job index, so classing is
		// deterministic and independent of worker scheduling.
		type tileClass struct {
			rep     int
			members []int
		}
		var classes []*tileClass
		classOf := map[string]int{}
		contexts := make([][]geom.Polygon, len(jobs))
		var keyBuf []byte
		for i := range jobs {
			core := jobs[i].core
			window := core.Grow(halo)
			if pass > 1 && !f.DisableDirtySkip && !ringDirty(movedIdx, window, core) {
				// Context unchanged within the halo: the engine would
				// reproduce the previous pass's result. Keep it.
				st.CleanTiles++
				mTilesClean.Inc()
				mTilesDone.Add(1)
				continue
			}
			ring := geom.RegionFromRects(window).Subtract(geom.RegionFromRects(core))
			contexts[i] = clipToRegion(ctxPolys, ctxIdx, window, ring)
			if f.DisableDedup {
				classes = append(classes, &tileClass{rep: i, members: []int{i}})
				continue
			}
			origin := geom.Pt(core.X0, core.Y0)
			keyBuf = keyBuf[:0]
			keyBuf = geom.AppendCanonicalPolygons(keyBuf, jobs[i].active, origin)
			keyBuf = geom.AppendCanonicalPolygons(keyBuf, contexts[i], origin)
			key := string(keyBuf)
			if ci, ok := classOf[key]; ok {
				classes[ci].members = append(classes[ci].members, i)
			} else {
				classOf[key] = len(classes)
				classes = append(classes, &tileClass{rep: i, members: []int{i}})
			}
		}

		// Stage 2 (parallel): correct one representative per class.
		// Multi-member classes correct at the canonical origin so every
		// placement receives the identical solution; singletons correct
		// in place.
		type classResult struct {
			polys []geom.Polygon
			rms   float64
			iters int
		}
		classRes := make([]classResult, len(classes))
		var mu sync.Mutex
		var firstErr error
		classCh := make(chan int)
		var wg sync.WaitGroup
		nw := workers
		if nw > len(classes) {
			nw = len(classes)
		}
		if nw < 1 {
			nw = 1
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range classCh {
					c := classes[ci]
					j := jobs[c.rep]
					core := j.core
					active := j.active
					context := contexts[c.rep]
					if len(c.members) > 1 {
						// Canonical placement: tile origin at (0,0).
						shift := geom.Pt(-core.X0, -core.Y0)
						core = core.Translate(shift)
						active = geom.TranslatePolygons(active, shift)
						context = geom.TranslatePolygons(context, shift)
					}
					window := core.Grow(halo)
					eng := model.New(f.Sim, f.Threshold)
					eng.Spec = f.Spec
					eng.MRC = f.MRC
					eng.Damping = f.Damping
					eng.RMSEps = f.ConvergeEps
					if level == L2 {
						eng.MaxIter = f.ModelIter1
					} else {
						eng.MaxIter = f.ModelIterFull
					}
					eng.Context = context
					freeze := core
					eng.FreezeBoundary = &freeze
					// Everything is clipped to core + halo, so the window
					// never exceeds tile + 2*halo regardless of how long
					// the original wires are.
					mWorkersBusy.Add(1)
					tc0 := time.Now()
					res, conv, err := eng.Correct(active, window)
					mTileSeconds.Observe(time.Since(tc0).Seconds())
					mWorkersBusy.Add(-1)
					mTilesDone.Add(float64(len(c.members)))
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("core: pass %d tile %v: %w", pass, jobs[c.rep].core, err)
						}
						mu.Unlock()
						continue
					}
					classRes[ci] = classResult{polys: res.Corrected, rms: conv.Final().RMS, iters: conv.Iterations}
				}
			}()
		}
		for ci := range classes {
			classCh <- ci
		}
		close(classCh)
		wg.Wait()
		if firstErr != nil {
			passSpan.End()
			st.Seconds = time.Since(t0).Seconds()
			return opc.Result{}, st, firstErr
		}

		// Stage 3 (serial): place every class member by translating the
		// canonical solution to its tile origin.
		for ci, c := range classes {
			cr := classRes[ci]
			st.CorrectedTiles++
			mTilesCorrected.Inc()
			st.Iterations += cr.iters
			if len(c.members) == 1 {
				i := c.rep
				results[i] = cr.polys
				tileRMS[i] = cr.rms
				continue
			}
			st.ReusedTiles += len(c.members) - 1
			mTilesReused.Add(int64(len(c.members) - 1))
			for _, i := range c.members {
				origin := geom.Pt(jobs[i].core.X0, jobs[i].core.Y0)
				results[i] = geom.TranslatePolygons(cr.polys, origin)
				tileRMS[i] = cr.rms
			}
		}

		// Prepare the next pass: moved-geometry index for the dirty
		// filter, and the corrected layer as the new context source.
		if pass < passes {
			movedIdx = geom.NewGridIndex(tile)
			n := int32(0)
			for i := range jobs {
				if sameSlice(results[i], xorBase[i]) {
					continue // clean reuse: nothing moved
				}
				moved := geom.RegionFromPolygons(results[i]...).
					Xor(geom.RegionFromPolygons(xorBase[i]...))
				for _, r := range moved.Rects() {
					// DirtyEps is the stitching tolerance: an edge that
					// moved by no more than eps (an XOR sliver thinner
					// than eps) is not propagated as dirty-making.
					if f.DirtyEps > 0 && (r.W() <= f.DirtyEps || r.H() <= f.DirtyEps) {
						continue
					}
					movedIdx.Insert(r, n)
					n++
				}
				xorBase[i] = results[i]
			}
			ctxPolys = ctxPolys[:0:0]
			for i := range jobs {
				ctxPolys = append(ctxPolys, results[i]...)
			}
			ctxIdx = geom.NewGridIndex(tile)
			for i, p := range ctxPolys {
				ctxIdx.Insert(p.BBox(), int32(i))
			}
		}
		passSpan.End()
	}

	var out opc.Result
	for i := range jobs {
		out.Corrected = append(out.Corrected, results[i]...)
	}
	st.WorstRMS = 0
	for _, rms := range tileRMS {
		if rms > st.WorstRMS {
			st.WorstRMS = rms
		}
	}
	kh1, km1 := f.Sim.KernelCacheStats()
	st.KernelHits, st.KernelMisses = kh1-kh0, km1-km0
	st.Seconds = time.Since(t0).Seconds()
	st.Corrected = len(out.Corrected)
	return out, st, nil
}

// sameSlice reports whether two polygon slices are the same slice (the
// clean-reuse case, where a tile's result was carried over unchanged).
func sameSlice(a, b []geom.Polygon) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// ringDirty reports whether any moved rectangle overlaps the tile's
// halo ring (window minus core) with positive area. Movement fully
// inside the core is invisible to this tile: its context is clipped to
// the ring, and its own active geometry restarts from the drawn layer
// every pass.
func ringDirty(moved *geom.GridIndex, window, core geom.Rect) bool {
	dirty := false
	moved.Query(window, func(box geom.Rect, _ int32) bool {
		o := box.Intersect(window)
		if o.Empty() {
			return true
		}
		if o.X0 >= core.X0 && o.Y0 >= core.Y0 && o.X1 <= core.X1 && o.Y1 <= core.Y1 {
			return true
		}
		dirty = true
		return false
	})
	return dirty
}

// clipToRegion gathers the polygons touching the query window and clips
// them to the region (fast-pathing polygons already inside it).
func clipToRegion(polys []geom.Polygon, idx *geom.GridIndex, query geom.Rect, clip geom.Region) []geom.Polygon {
	cb := clip.BBox()
	var out []geom.Polygon
	for _, id := range idx.CollectIDs(query) {
		p := polys[id]
		bb := p.BBox()
		if !bb.Touches(cb) {
			continue
		}
		// Fast path: fully inside a single-rect clip.
		if clip.Count() == 1 {
			r := clip.Rects()[0]
			if bb.X0 >= r.X0 && bb.Y0 >= r.Y0 && bb.X1 <= r.X1 && bb.Y1 <= r.Y1 {
				out = append(out, p)
				continue
			}
		}
		pieces := geom.RegionFromPolygons(p).Intersect(clip).Polygons()
		out = append(out, pieces...)
	}
	return out
}
