// Package core implements the paper's subject matter: the OPC adoption
// flow. It wires the substrates together — layout in, calibrated
// imaging model, rule-based or model-based correction at a selectable
// adoption level, post-OPC verification, mask data preparation — and
// quantifies what each correction level costs and buys: print fidelity,
// mask data volume, hierarchy survival, design-rule headroom, and flow
// runtime. Every experiment in DESIGN.md drives this package.
package core

import (
	"fmt"
	"time"

	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/mask"
	"goopc/internal/obs"
	"goopc/internal/obs/trace"
	"goopc/internal/opc"
	"goopc/internal/opc/model"
	"goopc/internal/opc/rules"
	"goopc/internal/optics"
	"goopc/internal/orc"
	"goopc/internal/patlib"
	"goopc/internal/prior"
	"goopc/internal/resist"
)

// Level is the OPC adoption level, the paper's central knob.
type Level int

// Adoption levels.
const (
	// L0: no correction — the drawn data goes to the mask.
	L0 Level = iota
	// L1: rule-based OPC — bias tables, hammerheads, serifs.
	L1
	// L2: model-based OPC, single correction pass.
	L2
	// L3: model-based OPC iterated to convergence, with scattering bars.
	L3
)

// Levels lists all adoption levels in order.
var Levels = []Level{L0, L1, L2, L3}

func (l Level) String() string {
	switch l {
	case L0:
		return "L0-none"
	case L1:
		return "L1-rules"
	case L2:
		return "L2-model-1pass"
	case L3:
		return "L3-model-full"
	}
	return fmt.Sprintf("L%d", int(l))
}

// Flow is a calibrated correction flow: one exposure setup, one resist
// threshold, one rule deck, ready to correct and assess layouts at any
// adoption level.
type Flow struct {
	Sim       *optics.Simulator
	Threshold float64
	// Rules is the rule-based recipe (L1); its bias table is built
	// during flow setup.
	Rules rules.Recipe
	// ModelIter1 and ModelIterFull are the iteration budgets of L2 and
	// L3.
	ModelIter1, ModelIterFull int
	// Damping is the model-OPC feedback gain.
	Damping float64
	// Spec is the shared fragmentation recipe.
	Spec geom.FragmentSpec
	// MRC clamps all corrections.
	MRC opc.MRC
	// Checker verifies the result; Writer and MaskRules cost it.
	Checker   *orc.Checker
	Writer    mask.WriterModel
	MaskRules mask.MRCRules
	// Ambit is the optical interaction distance used for windows (DBU).
	Ambit geom.Coord
	// TilePasses is the number of context passes CorrectWindowed runs
	// for iterated model correction (0 selects the default of 2).
	TilePasses int
	// ConvergeEps is the per-iteration EPE-RMS improvement (nm) below
	// which tiled model correction stops iterating (model.Engine.RMSEps).
	// Zero disables the early exit and always spends the full budget.
	ConvergeEps float64
	// DirtyEps is the dirty-tile stitching tolerance (DBU): a pass-1
	// edge movement is propagated to neighboring tiles' pass-2
	// schedules only when it exceeds this. Zero (the default) treats
	// any movement as dirty-making, which makes the dirty-tile pass 2
	// exact: skipped tiles are provably those whose re-correction would
	// reproduce their pass-1 result.
	DirtyEps geom.Coord
	// DisableDedup and DisableDirtySkip turn off the tile-deduplication
	// and clean-tile-skip scheduler optimizations; both are exact, so
	// the switches exist for verification and benchmarking, not safety.
	DisableDedup, DisableDirtySkip bool
	// RetargetMinCD, when positive, widens drawn features narrower than
	// this before any correction (the pre-OPC retargeting stage); the
	// EPE target remains the retargeted geometry.
	RetargetMinCD geom.Coord
	// Span, when non-nil, receives child spans for each CorrectWindowed
	// context pass (obs phase tracing). Set it from the driving tool
	// before a run; nil (the default) traces nothing. Not for use from
	// concurrent CorrectWindowed calls on the same Flow.
	Span *obs.Span
	// Progress, when non-nil, receives tile-completion events from
	// CorrectWindowedCtx: once when each pass starts (DoneTiles 0) and
	// once per resolved tile batch afterwards. The callback runs on
	// scheduler worker goroutines concurrently, so it must be
	// concurrency-safe and fast (the opcd job server feeds per-job
	// gauges and SSE streams from it).
	Progress func(ProgressEvent)
	// Tracer, when non-nil, is the flight recorder every tiled run emits
	// its tile-lifecycle events into (DESIGN.md 5h): scheduling, dedup
	// and pattern-library hits, solve begin/end with iterations and RMS,
	// retries, timeouts, degradations and checkpoint writes, per worker.
	// Nil (the default) records nothing at no measurable cost. Safe for
	// concurrent runs — emit is lock-free — though one recorder then
	// interleaves both runs' timelines.
	Tracer *trace.Recorder
	// AnchorCD and AnchorPitch record the calibration anchor.
	AnchorCD, AnchorPitch geom.Coord

	// Resilience knobs (see DESIGN.md 5e). Deadline, when positive,
	// bounds the whole CorrectWindowedCtx run; TileTimeout bounds each
	// per-tile engine attempt. TileRetries is the number of re-attempts
	// after a failed/panicked/timed-out tile attempt before the
	// degradation ladder engages (model -> rules -> uncorrected);
	// RetryBackoff is the base context-aware sleep between attempts
	// (doubled per retry).
	Deadline     time.Duration
	TileTimeout  time.Duration
	TileRetries  int
	RetryBackoff time.Duration
	// FaultPlan, when non-nil, arms deterministic fault injection at
	// the scheduler's probe sites ("tile", "rules") — the test harness
	// for every recovery path, also reachable via opcflow -inject.
	FaultPlan *faults.Plan
	// CheckpointPath, when set, makes CorrectWindowedCtx persist
	// completed canonical tile-class results there (atomically, at most
	// every CheckpointEvery, default 30s) and always once at run end —
	// including cancelled runs, so a SIGINT costs no completed work.
	// Resume, when non-nil, seeds the run with a previously written
	// checkpoint: classes already present are restored instead of
	// corrected. The checkpoint fingerprint must match the run.
	CheckpointPath  string
	CheckpointEvery time.Duration
	Resume          *Checkpoint

	// Cross-run pattern library (DESIGN.md 5f). PatLib, when non-nil, is
	// a shared open library — the opcd server injects one library for
	// all jobs. Otherwise, when PatternLibPath is set,
	// CorrectWindowedCtx opens the store there for the duration of the
	// run (creating it on first use) and closes it at run end.
	// PatLibReadOnly serves hits without persisting new solutions. A
	// library whose fingerprint does not match this flow's settings is
	// ignored for the run (every tile solves normally).
	PatLib         *patlib.Library
	PatternLibPath string
	PatLibReadOnly bool

	// ClassSolver, when non-nil, is the distributed-correction seam
	// (DESIGN.md 5i): CorrectWindowedCtx offers each pass's
	// checkpoint-missing canonical tile classes to it before the local
	// solve pool runs, and folds returned entries exactly like resumed
	// checkpoint records. Best-effort — classes the solver does not
	// return are solved locally, so a failing or empty cluster never
	// changes the output, only where the work ran.
	ClassSolver ClassSolver

	// Prior, when non-nil, is the learned initial-bias table (DESIGN.md
	// 5j): every model-OPC engine run warm-starts each fragment whose
	// D4-canonical signature the table predicts, clamped by MRC. Warm
	// starts only seed iteration 0 — the feedback loop still converges
	// on its own criteria — so warmed output agrees with a cold run to
	// within ConvergeEps while spending fewer iterations. With Prior
	// nil the flow is bit-identical to a flow without this field, and
	// checkpoints/pattern libraries written cold stay valid.
	Prior *prior.Table
}

// ProgressEvent is one live snapshot of a windowed correction run:
// which context pass is executing and how many of its tiles are
// resolved (corrected, reused, clean-skipped or resumed).
type ProgressEvent struct {
	Pass       int `json:"pass"`
	Passes     int `json:"passes"`
	DoneTiles  int `json:"done_tiles"`
	TotalTiles int `json:"total_tiles"`
}

// Options configures flow construction.
type Options struct {
	// Optics defaults to optics.Default() when zero-valued.
	Optics optics.Settings
	// AnchorCD / AnchorPitch: the dose-to-size anchor (250/500 default).
	AnchorCD, AnchorPitch geom.Coord
	// BiasSpaces are the rule-table environment bins (defaults provided).
	BiasSpaces []geom.Coord
	// SkipBiasTable skips rule-table generation (L1 then biases by 0 and
	// only applies hammerheads/serifs) — useful for fast tests.
	SkipBiasTable bool
}

// NewFlow calibrates the resist threshold against the anchor and builds
// the rule-based bias table by simulation. This mirrors a real process
// bring-up: calibrate once, correct many.
func NewFlow(o Options) (*Flow, error) {
	s := o.Optics
	if s.LambdaNM == 0 {
		s = optics.Default()
	}
	sim, err := optics.New(s)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if o.AnchorCD == 0 {
		o.AnchorCD, o.AnchorPitch = 250, 500
	}
	th, err := resist.CalibrateThreshold(sim, o.AnchorCD, o.AnchorPitch)
	if err != nil {
		return nil, fmt.Errorf("core: calibration: %w", err)
	}
	f := &Flow{
		Sim:           sim,
		Threshold:     th,
		Rules:         rules.DefaultRecipe(),
		ModelIter1:    1,
		ModelIterFull: 8,
		Damping:       0.7,
		Spec:          geom.DefaultFragmentSpec(),
		MRC:           opc.DefaultMRC(),
		Checker:       orc.NewChecker(sim, th),
		Writer:        mask.DefaultWriter(),
		MaskRules:     mask.DefaultMRCRules(),
		Ambit:         geom.Coord(2 * s.LambdaNM / s.NA),
		ConvergeEps:   0.1,
		AnchorCD:      o.AnchorCD,
		AnchorPitch:   o.AnchorPitch,
		TileRetries:   2,
		RetryBackoff:  10 * time.Millisecond,
	}
	if !o.SkipBiasTable {
		spaces := o.BiasSpaces
		if len(spaces) == 0 {
			spaces = []geom.Coord{240, 320, 420, 560, 800}
		}
		tab, err := rules.BuildBiasTable(sim, th, 180, spaces)
		if err != nil {
			return nil, fmt.Errorf("core: bias table: %w", err)
		}
		f.Rules.Bias = tab
	}
	return f, nil
}

// Correct runs the given adoption level on a flat target layer and
// returns the corrected mask plus the model convergence trace (nil for
// L0/L1).
func (f *Flow) Correct(target []geom.Polygon, level Level) (opc.Result, *model.Convergence, error) {
	if len(target) == 0 {
		return opc.Result{}, nil, fmt.Errorf("core: empty target")
	}
	if f.RetargetMinCD > 0 && level != L0 {
		rt, err := opc.Retarget(target, f.RetargetMinCD)
		if err != nil {
			return opc.Result{}, nil, err
		}
		target = rt
	}
	switch level {
	case L0:
		return opc.Uncorrected(target), nil, nil
	case L1:
		return f.Rules.Apply(target), nil, nil
	case L2, L3:
		eng := f.modelEngine(target, level)
		window := opc.WindowFor(target, f.Ambit)
		res, conv, err := eng.Correct(target, window)
		if err != nil {
			return opc.Result{}, nil, err
		}
		if f.Prior != nil && conv.WarmStarted > 0 {
			f.Prior.ObserveWarmRun(conv.Iterations)
		}
		return res, &conv, nil
	}
	return opc.Result{}, nil, fmt.Errorf("core: unknown level %d", int(level))
}

// modelEngine builds the configured model-OPC engine for an untiled
// L2/L3 run on target, including L3 assist-feature seeding and the
// learned-prior warm-start hook (signatures are captured against the
// drawn target — the same geometry family the table was fitted over).
func (f *Flow) modelEngine(target []geom.Polygon, level Level) *model.Engine {
	eng := model.New(f.Sim, f.Threshold)
	eng.Spec = f.Spec
	eng.MRC = f.MRC
	eng.Damping = f.Damping
	if level == L2 {
		eng.MaxIter = f.ModelIter1
	} else {
		eng.MaxIter = f.ModelIterFull
		// L3 adds assist features from the rule recipe before model
		// iteration, then freezes them.
		sraf := f.Rules
		sraf.Bias = rules.BiasTable{}
		sraf.HammerExt, sraf.HammerWing, sraf.SerifSize = 0, 0, 0
		eng.SRAFs = sraf.Apply(target).SRAFs
	}
	if f.Prior != nil {
		eng.InitialBias = f.Prior.InitialBias(target)
	}
	return eng
}

// CorrectSample is Correct restricted to the model levels (L2/L3),
// additionally returning the engine's final per-polygon fragment state
// — the dataset factory's record source: each fragment carries its
// converged bias, which internal/prior fits signatures against.
func (f *Flow) CorrectSample(target []geom.Polygon, level Level) (opc.Result, model.Convergence, [][]geom.Fragment, error) {
	if len(target) == 0 {
		return opc.Result{}, model.Convergence{}, nil, fmt.Errorf("core: empty target")
	}
	if level != L2 && level != L3 {
		return opc.Result{}, model.Convergence{}, nil, fmt.Errorf("core: CorrectSample needs a model level, got %s", level)
	}
	if f.RetargetMinCD > 0 {
		rt, err := opc.Retarget(target, f.RetargetMinCD)
		if err != nil {
			return opc.Result{}, model.Convergence{}, nil, err
		}
		target = rt
	}
	eng := f.modelEngine(target, level)
	// Sample runs mirror the tiled production loop's stall-based early
	// exit, so recorded (and warm-rerun) iteration counts match what
	// full-layer correction would spend. Correct keeps RMSEps unset for
	// exact compatibility with untiled runs that predate ConvergeEps.
	eng.RMSEps = f.ConvergeEps
	window := opc.WindowFor(target, f.Ambit)
	res, conv, frags, err := eng.CorrectFragments(target, window)
	if err != nil {
		return opc.Result{}, model.Convergence{}, nil, err
	}
	if f.Prior != nil && conv.WarmStarted > 0 {
		f.Prior.ObserveWarmRun(conv.Iterations)
	}
	return res, conv, frags, nil
}

// Impact is what one adoption level did to one layout clip: the
// fidelity gained and the design/mask cost paid — the paper's
// title quantities.
type Impact struct {
	Level Level
	// EPE is the post-correction edge fidelity.
	EPE opc.EPEStats
	// Hotspots counts post-OPC verification failures by kind.
	Pinches, Bridges, SideLobes, EPEViolations int
	// Data is the mask-data cost of the corrected layer.
	Data mask.DataStats
	// MRCViolations counts mask-rule failures in the corrected data.
	MRCViolations int
	// CorrectSec and VerifySec are wall-clock flow costs.
	CorrectSec, VerifySec float64
	// Iterations is the model-OPC iteration count (0 for L0/L1).
	Iterations int
}

// Assess corrects a flat target at the level, verifies it, and computes
// the mask-data cost, timing each stage.
func (f *Flow) Assess(target []geom.Polygon, level Level) (Impact, error) {
	imp := Impact{Level: level}
	t0 := time.Now()
	res, conv, err := f.Correct(target, level)
	if err != nil {
		return imp, err
	}
	imp.CorrectSec = time.Since(t0).Seconds()
	if conv != nil {
		imp.Iterations = conv.Iterations
	}
	window := opc.WindowFor(target, f.Ambit)
	t1 := time.Now()
	rep, err := f.Checker.Check(target, res, window)
	if err != nil {
		return imp, err
	}
	imp.VerifySec = time.Since(t1).Seconds()
	imp.EPE = rep.EPE
	imp.Pinches = rep.Count(orc.Pinch)
	imp.Bridges = rep.Count(orc.Bridge)
	imp.SideLobes = rep.Count(orc.SideLobe)
	imp.EPEViolations = rep.Count(orc.EPEViolation)
	imp.Data = mask.Analyze(res.AllMask(), f.Writer)
	imp.MRCViolations = len(mask.CheckMRC(res.AllMask(), f.MaskRules))
	return imp, nil
}
