package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"goopc/internal/geom"
)

// patlibFingerprint hashes every flow setting a stored tile-class
// solution depends on — optics, resist threshold, tile and halo
// geometry, engine budgets and fragmentation/MRC recipes — but NOT the
// target layer: the whole point of the cross-run library is sharing
// solutions between different layouts corrected under the same process
// setup. The adoption level is part of each record's key (an L2 and an
// L3 solution for the same geometry differ), and the pass structure
// needs no hashing because a class key already encodes the context
// geometry the pass saw.
func (f *Flow) patlibFingerprint(tile geom.Coord) string {
	h := sha256.New()
	fmt.Fprintf(h, "patlib1|optics=%+v|th=%.12g|tile=%d|halo=%d|iter=%d/%d|damp=%g|eps=%g|spec=%+v|mrc=%+v|",
		f.Sim.S, f.Threshold, tile, f.Ambit,
		f.ModelIter1, f.ModelIterFull, f.Damping, f.ConvergeEps, f.Spec, f.MRC)
	if f.Prior != nil {
		// Warmed solutions differ (within ConvergeEps) from cold ones, so
		// a library built warm is not interchangeable with a cold one.
		// Cold flows omit the token, keeping existing libraries valid.
		fmt.Fprintf(h, "prior=%s|", f.Prior.Fingerprint())
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
