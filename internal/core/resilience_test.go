package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"goopc/internal/faults"
	"goopc/internal/geom"
)

// resilientFlow copies the shared test flow with fast retry settings.
func resilientFlow(t *testing.T) Flow {
	f := *testFlow(t)
	f.TileRetries = 2
	f.RetryBackoff = time.Millisecond
	return f
}

// mustPlan parses a fault plan or fails the test.
func mustPlan(t *testing.T, s string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// threeDistinctClusters builds three geometrically different isolated
// clusters, three tiles apart (tile = 2500), so the scheduler sees
// three distinct equivalence classes.
func threeDistinctClusters() []geom.Polygon {
	return []geom.Polygon{
		geom.R(200, 200, 380, 1700).Polygon(),
		geom.R(7700, 200, 7880, 2100).Polygon(),
		geom.R(15200, 200, 15380, 1200).Polygon(),
		geom.R(15600, 200, 15780, 1200).Polygon(),
	}
}

func TestFaultInjectionErrorRetriesThenSucceeds(t *testing.T) {
	f := resilientFlow(t)
	target, _ := twoIsolatedClusters()
	clean, _, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}

	// Both classes... actually one deduped class: the first two attempts
	// fail, the third succeeds.
	f.FaultPlan = mustPlan(t, "seed=1;tile:error:n=2")
	res, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
	if st.Panics != 0 || st.Timeouts != 0 || len(st.Degradations) != 0 {
		t.Errorf("unexpected panics/timeouts/degradations: %d/%d/%d",
			st.Panics, st.Timeouts, len(st.Degradations))
	}
	// Recovery is invisible in the output: bit-identical to fault-free.
	if !reflect.DeepEqual(res.Corrected, clean.Corrected) {
		t.Error("recovered run output differs from fault-free run")
	}
}

func TestFaultInjectionPanicRecovered(t *testing.T) {
	f := resilientFlow(t)
	target, _ := twoIsolatedClusters()
	clean, _, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}

	f.FaultPlan = mustPlan(t, "seed=1;tile:panic:n=1")
	res, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Panics != 1 || st.Retries != 1 {
		t.Errorf("panics/retries = %d/%d, want 1/1", st.Panics, st.Retries)
	}
	if !reflect.DeepEqual(res.Corrected, clean.Corrected) {
		t.Error("panic-recovered run output differs from fault-free run")
	}
}

func TestDegradationLadderRulesFallback(t *testing.T) {
	f := resilientFlow(t)
	target, _ := twoIsolatedClusters()
	// Every model attempt fails; the rules fallback is healthy.
	f.FaultPlan = mustPlan(t, "seed=1;tile:error:n=1000")
	res, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatalf("degradation must not lose the run: %v", err)
	}
	if st.DegradedRules == 0 || st.DegradedUncorrected != 0 {
		t.Errorf("degraded rules/uncorrected = %d/%d, want >0/0",
			st.DegradedRules, st.DegradedUncorrected)
	}
	if len(st.Degradations) == 0 {
		t.Fatal("no degradation records")
	}
	for _, d := range st.Degradations {
		if d.Mode != degradeRules {
			t.Errorf("degradation mode = %q, want %q", d.Mode, degradeRules)
		}
		if d.Err == "" {
			t.Error("degradation record missing the model-path error")
		}
	}
	if len(res.Corrected) == 0 {
		t.Error("degraded run produced no geometry")
	}
}

func TestDegradationLadderUncorrectedFallback(t *testing.T) {
	f := resilientFlow(t)
	target, _ := twoIsolatedClusters()
	// Model and rules both fault: the ladder bottoms out at
	// uncorrected-as-drawn and the run still completes.
	f.FaultPlan = mustPlan(t, "seed=1;tile:error:n=1000;rules:error:n=1000")
	res, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatalf("degradation must not lose the run: %v", err)
	}
	if st.DegradedUncorrected == 0 {
		t.Error("no uncorrected degradations recorded")
	}
	for _, d := range st.Degradations {
		if d.Mode != degradeUncorrected {
			t.Errorf("degradation mode = %q, want %q", d.Mode, degradeUncorrected)
		}
	}
	// Uncorrected fallback passes the drawn (clipped) geometry through.
	if len(res.Corrected) != len(target) {
		t.Errorf("uncorrected fallback produced %d polygons, want %d", len(res.Corrected), len(target))
	}
}

func TestTileTimeoutDegrades(t *testing.T) {
	f := resilientFlow(t)
	f.TileTimeout = time.Nanosecond // expires before the first model iteration
	target, _ := twoIsolatedClusters()
	_, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatalf("timeouts must degrade, not fail the run: %v", err)
	}
	if st.Timeouts != 3 {
		t.Errorf("timeouts = %d, want 3 (initial attempt + 2 retries)", st.Timeouts)
	}
	if st.DegradedRules == 0 {
		t.Error("timed-out tile did not degrade to rules")
	}
}

func TestRunCancellationAborts(t *testing.T) {
	f := resilientFlow(t)
	target, _ := twoIsolatedClusters()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := f.CorrectWindowedCtx(ctx, target, L2, 2500, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunDeadlineAborts(t *testing.T) {
	f := resilientFlow(t)
	f.Deadline = time.Nanosecond
	target, _ := twoIsolatedClusters()
	_, _, err := f.CorrectWindowed(target, L2, 2500, false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCheckpointResumeBitIdentical is the tentpole proof: a faulty
// checkpointed run followed by a fault-free resume reproduces the
// fault-free output bit for bit, re-attempting only what the faulty run
// degraded.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	target := threeDistinctClusters()

	clean := resilientFlow(t)
	resClean, stClean, err := clean.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if stClean.CorrectedTiles != 3 {
		t.Fatalf("clean run corrected %d classes, want 3 distinct", stClean.CorrectedTiles)
	}

	ckptPath := filepath.Join(t.TempDir(), "run.ckpt")
	faulty := resilientFlow(t)
	faulty.CheckpointPath = ckptPath
	faulty.CheckpointEvery = time.Nanosecond // flush on every completed class
	// The first class consumes the whole fault budget (1 attempt + 2
	// retries), degrades to rules; the other two correct cleanly.
	faulty.FaultPlan = mustPlan(t, "seed=1;tile:error:n=3")
	resFaulty, stFaulty, err := faulty.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if stFaulty.DegradedRules != 1 {
		t.Fatalf("faulty run degraded %d classes, want 1", stFaulty.DegradedRules)
	}
	if reflect.DeepEqual(resFaulty.Corrected, resClean.Corrected) {
		t.Fatal("faulty run unexpectedly matched the clean output (fault not injected?)")
	}

	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := ck.Entries(); got != 2 {
		t.Fatalf("checkpoint holds %d entries, want 2 (degraded class must be excluded)", got)
	}

	resumed := resilientFlow(t)
	resumed.Resume = ck
	resResumed, stResumed, err := resumed.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if stResumed.ResumedTiles != 2 {
		t.Errorf("resumed tiles = %d, want 2", stResumed.ResumedTiles)
	}
	if stResumed.CorrectedTiles != 1 {
		t.Errorf("resumed run corrected %d classes, want 1 (the degraded one)", stResumed.CorrectedTiles)
	}
	if !reflect.DeepEqual(resResumed.Corrected, resClean.Corrected) {
		t.Error("fault-free resume is not bit-identical to the fault-free run")
	}
}

// TestCancellationMidPassLeavesLoadableCheckpoint interrupts a delayed
// serial run after its first class completes, then proves the flushed
// checkpoint resumes to a bit-identical result.
func TestCancellationMidPassLeavesLoadableCheckpoint(t *testing.T) {
	target := threeDistinctClusters()

	clean := resilientFlow(t)
	resClean, _, err := clean.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(t.TempDir(), "cancel.ckpt")
	f := resilientFlow(t)
	f.CheckpointPath = ckptPath
	f.CheckpointEvery = time.Nanosecond
	// Delay every attempt so the test can cancel between classes.
	f.FaultPlan = mustPlan(t, "seed=1;tile:delay:p=1:d=30ms")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Cancel once the first completed class hits the checkpoint.
		for {
			if fi, err := os.Stat(ckptPath); err == nil && fi.Size() > 0 {
				cancel()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	_, _, err = f.CorrectWindowedCtx(ctx, target, L2, 2500, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("interrupted run left no loadable checkpoint: %v", err)
	}
	if ck.Entries() < 1 {
		t.Fatal("checkpoint empty after cancellation")
	}

	resumed := resilientFlow(t)
	resumed.Resume = ck
	resResumed, stResumed, err := resumed.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if stResumed.ResumedTiles < 1 {
		t.Errorf("resumed tiles = %d, want >= 1", stResumed.ResumedTiles)
	}
	if !reflect.DeepEqual(resResumed.Corrected, resClean.Corrected) {
		t.Error("resumed output is not bit-identical to the uninterrupted run")
	}
}

func TestCheckpointFingerprintMismatchRefused(t *testing.T) {
	target := threeDistinctClusters()
	ckptPath := filepath.Join(t.TempDir(), "fp.ckpt")
	f := resilientFlow(t)
	f.CheckpointPath = ckptPath
	if _, _, err := f.CorrectWindowed(target, L2, 2500, false); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	g := resilientFlow(t)
	g.Resume = ck
	// Different target -> different fingerprint -> refusal.
	other, _ := twoIsolatedClusters()
	_, _, err = g.CorrectWindowed(other, L2, 2500, false)
	if err == nil {
		t.Fatal("mismatched checkpoint fingerprint was accepted")
	}
	// The refusal must be the typed sentinel (drivers map it to their
	// invalid-input exit code) with a human-readable message: it names
	// the cause, and never leaks byte offsets or raw hash dumps.
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("mismatch error does not wrap ErrCheckpointMismatch: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "different target or settings") {
		t.Errorf("mismatch message does not explain the cause: %q", msg)
	}
	if strings.Contains(msg, "offset") || strings.Contains(msg, "byte ") {
		t.Errorf("mismatch message leaks byte offsets: %q", msg)
	}
	if len(msg) > 200 {
		t.Errorf("mismatch message dumps raw data (%d chars): %q", len(msg), msg)
	}
}

// --- scheduler edge cases (beyond the fault paths) ---

func TestCorrectWindowedEmptyTarget(t *testing.T) {
	f := resilientFlow(t)
	if _, _, err := f.CorrectWindowed(nil, L2, 2500, false); err == nil {
		t.Error("empty target must error, not panic")
	}
	if _, _, err := f.CorrectWindowedCtx(context.Background(), nil, L3, 2500, true); err == nil {
		t.Error("empty target must error, not panic (ctx variant)")
	}
}

func TestCorrectWindowedSingleTileLargerThanFrame(t *testing.T) {
	f := resilientFlow(t)
	// One tile dwarfing the whole frame: the scheduler degenerates to a
	// single windowed correction and must still work.
	target := []geom.Polygon{
		geom.R(200, 200, 380, 1700).Polygon(),
		geom.R(600, 200, 780, 1700).Polygon(),
	}
	res, st, err := f.CorrectWindowed(target, L2, 100000, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tiles != 1 {
		t.Errorf("tiles = %d, want 1", st.Tiles)
	}
	if len(res.Corrected) == 0 {
		t.Error("no corrected geometry")
	}
}

func TestCorrectWindowedAllTilesOneClass(t *testing.T) {
	f := resilientFlow(t)
	// Four translation-identical isolated clusters: the scheduler must
	// collapse them to a single engine run, and with checkpointing on,
	// a single checkpoint entry.
	cluster := []geom.Polygon{geom.R(200, 200, 380, 1700).Polygon()}
	var target []geom.Polygon
	for i := 0; i < 4; i++ {
		target = append(target, geom.TranslatePolygons(cluster, geom.Pt(geom.Coord(i)*7500, 0))...)
	}
	ckptPath := filepath.Join(t.TempDir(), "one.ckpt")
	f.CheckpointPath = ckptPath
	res, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.CorrectedTiles != 1 || st.ReusedTiles != 3 {
		t.Errorf("corrected/reused = %d/%d, want 1/3", st.CorrectedTiles, st.ReusedTiles)
	}
	if len(res.Corrected) == 0 {
		t.Error("no corrected geometry")
	}
	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Entries() != 1 {
		t.Errorf("checkpoint entries = %d, want 1 (one class)", ck.Entries())
	}
}
