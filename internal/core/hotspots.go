package core

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/orc"
	"goopc/internal/patmatch"
)

// HotspotLibrary couples verification to pattern matching: hotspots
// found by simulation once are captured as geometry patterns, and new
// layouts are screened for the same configurations without imaging.
// This is the bridge from OPC verification to pattern-based design
// rules ("DRC Plus") that the adoption of OPC eventually produced.
type HotspotLibrary struct {
	Lib *patmatch.Library
	// Captured lists the capture provenance for reporting.
	Captured []CapturedHotspot
}

// CapturedHotspot records where a library pattern came from.
type CapturedHotspot struct {
	Kind   orc.HotspotKind
	Name   string
	Anchor geom.Point
}

// BuildHotspotLibrary verifies the target at a level and captures every
// pinch and bridge hotspot as a pattern of the *drawn* layer (the
// pattern screens designs before correction).
func (f *Flow) BuildHotspotLibrary(target []geom.Polygon, level Level, radius geom.Coord) (*HotspotLibrary, error) {
	res, _, err := f.Correct(target, level)
	if err != nil {
		return nil, err
	}
	window := opc.WindowFor(target, f.Ambit)
	rep, err := f.Checker.Check(target, res, window)
	if err != nil {
		return nil, err
	}
	out := &HotspotLibrary{Lib: patmatch.NewLibrary(radius)}
	for i, h := range rep.Hotspots {
		if h.Kind != orc.Pinch && h.Kind != orc.Bridge {
			continue
		}
		anchor, ok := patmatch.NearestVertex(target, h.At)
		if !ok {
			continue
		}
		name := fmt.Sprintf("%s-%d", h.Kind, i)
		pat := patmatch.Capture(target, anchor, radius, name)
		if pat.Empty() {
			continue
		}
		if err := out.Lib.Add(pat); err != nil {
			continue // duplicate or degenerate captures are not fatal
		}
		out.Captured = append(out.Captured, CapturedHotspot{Kind: h.Kind, Name: name, Anchor: anchor})
	}
	return out, nil
}

// Screen scans a drawn layer for known hotspot patterns. No simulation
// runs: this is the cheap design-side check the capture pays for.
func (h *HotspotLibrary) Screen(target []geom.Polygon) []patmatch.Match {
	return h.Lib.Scan(target)
}
