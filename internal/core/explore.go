package core

import (
	"fmt"
	"math"

	"goopc/internal/geom"
	"goopc/internal/resist"
)

// PitchResult is one point of the design-rule exploration sweep.
type PitchResult struct {
	Pitch geom.Coord
	// PrintedCD is the measured center-line CD (NaN when the feature
	// failed).
	PrintedCD float64
	InSpec    bool
}

// MinPitchForSpec sweeps candidate pitches (ascending) for a line of
// drawn cd, corrects each array at the adoption level, and reports the
// smallest pitch whose printed CD stays within tolFrac of drawn — the
// design-rule headroom each OPC level buys (experiment R-T4). A zero
// return means no candidate pitch met spec.
func (f *Flow) MinPitchForSpec(cd geom.Coord, pitches []geom.Coord, tolFrac float64, level Level) (geom.Coord, []PitchResult, error) {
	if cd <= 0 || len(pitches) == 0 {
		return 0, nil, fmt.Errorf("core: bad exploration parameters")
	}
	var results []PitchResult
	var best geom.Coord
	for _, pitch := range pitches {
		if pitch < cd {
			return 0, nil, fmt.Errorf("core: pitch %d below cd %d", pitch, cd)
		}
		pr := PitchResult{Pitch: pitch, PrintedCD: math.NaN()}
		var target []geom.Polygon
		for i := -3; i <= 3; i++ {
			x := geom.Coord(i) * pitch
			target = append(target, geom.R(x-cd/2, -2500, x+cd/2, 2500).Polygon())
		}
		res, _, err := f.Correct(target, level)
		if err != nil {
			return 0, nil, fmt.Errorf("core: pitch %d: %w", pitch, err)
		}
		window := geom.R(-pitch-300, -300, pitch+300, 300)
		im, err := f.Sim.Aerial(res.AllMask(), window)
		if err != nil {
			return 0, nil, fmt.Errorf("core: pitch %d imaging: %w", pitch, err)
		}
		cdM, err := resist.MeasureCD(im, f.Threshold, 0, 0, true, float64(pitch))
		if err == nil {
			pr.PrintedCD = cdM
			pr.InSpec = math.Abs(cdM-float64(cd)) <= tolFrac*float64(cd)
		}
		if pr.InSpec && (best == 0 || pitch < best) {
			best = pitch
		}
		results = append(results, pr)
	}
	return best, results, nil
}
