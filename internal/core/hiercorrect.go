package core

import (
	"fmt"
	"sort"

	"goopc/internal/layout"
)

// CellCorrection reports one master's correction.
type CellCorrection struct {
	Cell     string
	Polygons int
	FinalRMS float64
	// Placements is the transitive placement count: how many times the
	// master appears in the fully expanded layout (instance counts
	// multiplied down the hierarchy).
	Placements int
}

// CellReport summarizes a hierarchical (context-independent) correction
// pass over a layout.
type CellReport struct {
	Layer layout.Layer
	Level Level
	Cells []CellCorrection
	// SharedMasters is the number of cells corrected once but placed
	// multiple times — the data-volume win of staying hierarchical.
	SharedMasters int
}

// CorrectCells corrects one layer master-by-master: every cell with
// geometry on the layer is corrected in isolation (context-independent
// OPC) and the result is written to the cell's OPC output layer
// (layout.OPCLayer). Hierarchy survives intact: each master is
// corrected once no matter how often it is placed.
//
// The price is accuracy at cell boundaries, where the real optical
// neighborhood differs from the isolated view — the tradeoff the
// hierarchy experiment (R-F5) quantifies. Use CorrectWindowed on the
// flattened layer when boundary accuracy matters more than data volume.
func (f *Flow) CorrectCells(ly *layout.Layout, l layout.Layer, level Level) (CellReport, error) {
	rep := CellReport{Layer: l, Level: level}
	if ly.Top == nil {
		return rep, layout.ErrNoTop
	}
	// Collect reachable cells and their transitive placement counts.
	// The traversal is memoized — each master is visited once no matter
	// how many instance paths reach it (a naive per-path walk is
	// exponential on deep shared hierarchies) — and counts multiply
	// down the tree: a cell placed c times inside a parent that itself
	// appears p times expands to p*c placements.
	var order []*layout.Cell
	seen := map[*layout.Cell]bool{}
	var visit func(c *layout.Cell)
	visit = func(c *layout.Cell) {
		if seen[c] {
			return
		}
		seen[c] = true
		for _, in := range c.Insts {
			visit(in.Cell)
		}
		order = append(order, c) // post-order: children before parents
	}
	visit(ly.Top)
	counts := map[*layout.Cell]int{ly.Top: 1}
	for i := len(order) - 1; i >= 0; i-- { // parents before children
		c := order[i]
		for _, in := range c.Insts {
			counts[in.Cell] += counts[c] * in.Count()
		}
	}

	// Deterministic order.
	cells := make([]*layout.Cell, 0, len(counts))
	for c := range counts {
		if len(c.Shapes[l]) > 0 {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })

	out := layout.OPCLayer(l)
	for _, c := range cells {
		target := c.Shapes[l]
		res, conv, err := f.Correct(target, level)
		if err != nil {
			return rep, fmt.Errorf("core: cell %q: %w", c.Name, err)
		}
		polys := res.AllMask()
		c.SetLayer(out, polys)
		cc := CellCorrection{Cell: c.Name, Polygons: len(polys), Placements: counts[c]}
		if conv != nil {
			cc.FinalRMS = conv.Final().RMS
		}
		rep.Cells = append(rep.Cells, cc)
		if counts[c] > 1 {
			rep.SharedMasters++
		}
	}
	return rep, nil
}

// OPCDataComparison prices the corrected layer hierarchically vs
// flattened: stored figures (hierarchy preserved) against expanded
// figures (flat tape-out).
type OPCDataComparison struct {
	StoredFigures   int
	ExpandedFigures int64
}

// CompareOPCData counts the corrected-layer figures both ways after a
// CorrectCells pass.
func CompareOPCData(ly *layout.Layout, l layout.Layer) (OPCDataComparison, error) {
	if ly.Top == nil {
		return OPCDataComparison{}, layout.ErrNoTop
	}
	out := layout.OPCLayer(l)
	var cmp OPCDataComparison
	seen := map[*layout.Cell]bool{}
	var mark func(c *layout.Cell)
	mark = func(c *layout.Cell) {
		if seen[c] {
			return
		}
		seen[c] = true
		cmp.StoredFigures += len(c.Shapes[out])
		for _, in := range c.Insts {
			mark(in.Cell)
		}
	}
	mark(ly.Top)
	memo := map[*layout.Cell]int64{}
	var expand func(c *layout.Cell) int64
	expand = func(c *layout.Cell) int64 {
		if v, ok := memo[c]; ok {
			return v
		}
		n := int64(len(c.Shapes[out]))
		for _, in := range c.Insts {
			n += int64(in.Count()) * expand(in.Cell)
		}
		memo[c] = n
		return n
	}
	cmp.ExpandedFigures = expand(ly.Top)
	return cmp, nil
}
