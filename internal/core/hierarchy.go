package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

// HierarchyImpact quantifies what context-dependent OPC does to design
// hierarchy: a cell master placed in N distinct optical neighborhoods
// needs N corrected variants, and in the worst case the layout
// effectively flattens — the data-volume cliff the paper warns about.
type HierarchyImpact struct {
	// Masters is the number of distinct cells with geometry on the
	// layer.
	Masters int
	// Placements is the total number of times those masters are placed.
	Placements int
	// VariantsPerMaster maps each master to the number of distinct
	// optical contexts among its placements (within ContextRadius).
	VariantsPerMaster map[string]int
	// TotalVariants is the number of corrected cell versions a
	// context-dependent hierarchical OPC flow must produce and manage.
	TotalVariants int
	// ContextRadius is the optical interaction distance used.
	ContextRadius geom.Coord
}

// ExpansionFactor is TotalVariants / Masters: 1.0 means hierarchy
// survives intact; approaching Placements/Masters means effective
// flattening.
func (h HierarchyImpact) ExpansionFactor() float64 {
	if h.Masters == 0 {
		return 0
	}
	return float64(h.TotalVariants) / float64(h.Masters)
}

// AnalyzeHierarchyImpact enumerates every placement of every master
// with geometry on the layer, computes the surrounding geometry within
// the radius (in master-local coordinates), and counts the distinct
// contexts per master.
func AnalyzeHierarchyImpact(ly *layout.Layout, l layout.Layer, radius geom.Coord) (HierarchyImpact, error) {
	if ly.Top == nil {
		return HierarchyImpact{}, layout.ErrNoTop
	}
	type placement struct {
		cell *layout.Cell
		x    geom.Xform
	}
	var placements []placement
	var walk func(c *layout.Cell, x geom.Xform)
	walk = func(c *layout.Cell, x geom.Xform) {
		for _, in := range c.Insts {
			child := in.Cell
			in.Each(func(ix geom.Xform) {
				cx := x.Compose(ix)
				if len(child.Shapes[l]) > 0 {
					placements = append(placements, placement{child, cx})
				}
				walk(child, cx)
			})
		}
	}
	walk(ly.Top, geom.Identity())

	imp := HierarchyImpact{
		VariantsPerMaster: map[string]int{},
		ContextRadius:     radius,
	}
	if len(placements) == 0 {
		return imp, nil
	}

	// Flatten the whole layer once for context queries.
	flat := layout.Flatten(ly.Top, l)
	idx := geom.NewGridIndex(10000)
	for i, p := range flat {
		idx.Insert(p.BBox(), int32(i))
	}

	variants := map[string]map[uint64]bool{}
	for _, pl := range placements {
		bb := pl.x.ApplyRect(boundsOf(pl.cell.Shapes[l]))
		window := bb.Grow(radius)
		// Context region: everything in the window minus this
		// placement's own geometry.
		var ctx []geom.Polygon
		for _, id := range idx.CollectIDs(window) {
			ctx = append(ctx, flat[id])
		}
		own := make([]geom.Polygon, 0, len(pl.cell.Shapes[l]))
		for _, p := range pl.cell.Shapes[l] {
			own = append(own, pl.x.ApplyPolygon(p))
		}
		ctxRegion := geom.BooleanPolygons(ctx, own, "sub")
		// Canonicalize in master-local coordinates.
		inv := pl.x.Invert()
		rects := ctxRegion.Rects()
		local := make([]geom.Rect, 0, len(rects))
		for _, r := range rects {
			lr := inv.ApplyRect(r)
			// Clip to the local window so identical neighborhoods match
			// exactly even when distant geometry differs.
			lw := boundsOf(pl.cell.Shapes[l]).Grow(radius)
			lr = lr.Intersect(lw)
			if !lr.Empty() {
				local = append(local, lr)
			}
		}
		sort.Slice(local, func(i, j int) bool {
			a, b := local[i], local[j]
			if a.Y0 != b.Y0 {
				return a.Y0 < b.Y0
			}
			if a.X0 != b.X0 {
				return a.X0 < b.X0
			}
			if a.Y1 != b.Y1 {
				return a.Y1 < b.Y1
			}
			return a.X1 < b.X1
		})
		h := fnv.New64a()
		for _, r := range local {
			fmt.Fprintf(h, "%d,%d,%d,%d;", r.X0, r.Y0, r.X1, r.Y1)
		}
		key := h.Sum64()
		if variants[pl.cell.Name] == nil {
			variants[pl.cell.Name] = map[uint64]bool{}
		}
		variants[pl.cell.Name][key] = true
		imp.Placements++
	}
	imp.Masters = len(variants)
	for name, set := range variants {
		imp.VariantsPerMaster[name] = len(set)
		imp.TotalVariants += len(set)
	}
	return imp, nil
}

func boundsOf(ps []geom.Polygon) geom.Rect {
	var bb geom.Rect
	for i, p := range ps {
		if i == 0 {
			bb = p.BBox()
		} else {
			bb = bb.Union(p.BBox())
		}
	}
	return bb
}
