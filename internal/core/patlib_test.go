package core

import (
	"path/filepath"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/patmatch"
)

// TestPatlibWarmExact is the library's core contract (and the CI smoke
// gate, via `make patlib-bench-smoke`): a second run of the same layout
// against a warm library serves every tile from the exact rung — zero
// engine corrections — and reproduces the cold output bit for bit.
func TestPatlibWarmExact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	target, _ := twoIsolatedClusters()

	cold := *testFlow(t)
	cold.PatternLibPath = path
	resC, stC, err := cold.CorrectWindowed(target, L3, 2500, true)
	if err != nil {
		t.Fatal(err)
	}
	if stC.LibExactTiles != 0 || stC.LibSimilarTiles != 0 {
		t.Fatalf("cold run hit the library: exact=%d similar=%d", stC.LibExactTiles, stC.LibSimilarTiles)
	}
	if stC.LibAppends == 0 {
		t.Fatal("cold run appended nothing to the library")
	}

	warm := *testFlow(t)
	warm.PatternLibPath = path
	resW, stW, err := warm.CorrectWindowed(target, L3, 2500, true)
	if err != nil {
		t.Fatal(err)
	}
	if stW.CorrectedTiles != 0 {
		t.Errorf("warm run corrected %d tile classes, want 0 (all from library)", stW.CorrectedTiles)
	}
	if stW.Iterations != 0 {
		t.Errorf("warm run spent %d model iterations, want 0", stW.Iterations)
	}
	if want := stC.CorrectedTiles + stC.ReusedTiles; stW.LibExactTiles != want {
		t.Errorf("warm exact-hit tiles = %d, want %d", stW.LibExactTiles, want)
	}
	if stW.LibMisses != 0 || stW.LibHaloRejects != 0 {
		t.Errorf("warm run missed: misses=%d haloRejects=%d", stW.LibMisses, stW.LibHaloRejects)
	}
	if len(resW.Corrected) != len(resC.Corrected) {
		t.Fatalf("warm polygons = %d, cold = %d", len(resW.Corrected), len(resC.Corrected))
	}
	for i := range resC.Corrected {
		a, b := resC.Corrected[i], resW.Corrected[i]
		if len(a) != len(b) {
			t.Fatalf("polygon %d: vertex count differs", i)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("polygon %d vertex %d: cold %v, warm %v — exact hit must be bit-identical", i, v, a[v], b[v])
			}
		}
	}
}

// symTarget returns a single-tile target whose bounding box is the full
// tile frame: a D4-symmetric corner marker (invariant under all eight
// orientations, so it pins the frame) plus an asymmetric device pattern
// mid-tile.
func symTarget(tile geom.Coord) []geom.Polygon {
	m := geom.Coord(200)
	return []geom.Polygon{
		geom.R(0, 0, m, m).Polygon(),
		geom.R(tile-m, 0, tile, m).Polygon(),
		geom.R(0, tile-m, m, tile).Polygon(),
		geom.R(tile-m, tile-m, tile, tile).Polygon(),
		// Asymmetric L so every orientation image is distinct.
		{
			{X: 900, Y: 700}, {X: 1500, Y: 700}, {X: 1500, Y: 900},
			{X: 1100, Y: 900}, {X: 1100, Y: 1900}, {X: 900, Y: 1900},
		},
	}
}

// TestPatlibWarmSimilarityRotated: a rotated copy of a solved layout
// misses the exact rung (its canonical bytes differ) but is served by
// the similarity rung — the stored solution carried through the
// matching frame orientation, area-identical to rotating the cold
// output itself.
func TestPatlibWarmSimilarityRotated(t *testing.T) {
	const tile geom.Coord = 2500
	frame := geom.Rect{X0: 0, Y0: 0, X1: tile, Y1: tile}
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	targetA := symTarget(tile)

	cold := *testFlow(t)
	cold.PatternLibPath = path
	resC, stC, err := cold.CorrectWindowed(targetA, L3, tile, true)
	if err != nil {
		t.Fatal(err)
	}
	if stC.Tiles != 1 {
		t.Fatalf("target spans %d tiles, want 1", stC.Tiles)
	}

	targetB := patmatch.ApplyFrame(targetA, frame, geom.R90)
	warm := *testFlow(t)
	warm.PatternLibPath = path
	resW, stW, err := warm.CorrectWindowed(targetB, L3, tile, true)
	if err != nil {
		t.Fatal(err)
	}
	if stW.LibSimilarTiles != 1 {
		t.Fatalf("similarity-hit tiles = %d, want 1 (stats: %+v)", stW.LibSimilarTiles, stW)
	}
	if stW.CorrectedTiles != 0 {
		t.Errorf("warm run corrected %d tile classes, want 0", stW.CorrectedTiles)
	}
	want := patmatch.ApplyFrame(resC.Corrected, frame, geom.R90)
	if !geom.RegionFromPolygons(resW.Corrected...).Xor(geom.RegionFromPolygons(want...)).Empty() {
		t.Error("warm output is not the rotated cold output")
	}
}

// TestPatlibFingerprintMismatchSolves: a library written under one flow
// setup silently stands aside for a run with different engine settings —
// the run solves everything itself and leaves the store untouched.
func TestPatlibFingerprintMismatchSolves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.jsonl")
	target, _ := twoIsolatedClusters()

	cold := *testFlow(t)
	cold.PatternLibPath = path
	if _, _, err := cold.CorrectWindowed(target, L2, 2500, true); err != nil {
		t.Fatal(err)
	}

	other := *testFlow(t)
	other.PatternLibPath = path
	other.ConvergeEps = 0 // different engine budget => different fingerprint
	_, st, err := other.CorrectWindowed(target, L2, 2500, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.LibExactTiles != 0 || st.LibSimilarTiles != 0 || st.LibAppends != 0 {
		t.Errorf("incompatible library was used: %+v", st)
	}
	if st.CorrectedTiles == 0 {
		t.Error("run did not solve its tiles")
	}
}
