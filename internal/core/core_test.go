package core

import (
	"math/rand"
	"sync"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/optics"
)

// testFlow is shared across the package tests: building it calibrates
// the threshold and the bias table, which costs a few seconds.
var (
	flowOnce sync.Once
	flowVal  *Flow
	flowErr  error
)

func testFlow(t *testing.T) *Flow {
	t.Helper()
	flowOnce.Do(func() {
		s := optics.Default()
		s.SourceSteps = 5
		s.GuardNM = 1200
		flowVal, flowErr = NewFlow(Options{
			Optics:     s,
			BiasSpaces: []geom.Coord{240, 420},
		})
	})
	if flowErr != nil {
		t.Fatal(flowErr)
	}
	return flowVal
}

func isoLineEnd() []geom.Polygon {
	return []geom.Polygon{geom.R(-90, -2200, 90, 0).Polygon()}
}

func TestNewFlowCalibrates(t *testing.T) {
	f := testFlow(t)
	if f.Threshold < 0.1 || f.Threshold > 0.6 {
		t.Errorf("threshold = %f", f.Threshold)
	}
	if len(f.Rules.Bias.Entries) != 2 {
		t.Errorf("bias entries = %d", len(f.Rules.Bias.Entries))
	}
	if f.Ambit < 500 || f.Ambit > 1000 {
		t.Errorf("ambit = %d", f.Ambit)
	}
}

func TestNewFlowRejectsBadOptics(t *testing.T) {
	s := optics.Default()
	s.NA = 2.0
	if _, err := NewFlow(Options{Optics: s, SkipBiasTable: true}); err == nil {
		t.Error("bad optics should fail")
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{L0: "L0-none", L1: "L1-rules", L2: "L2-model-1pass", L3: "L3-model-full"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Level %d = %q", int(l), l.String())
		}
	}
	if len(Levels) != 4 {
		t.Errorf("Levels = %v", Levels)
	}
}

func TestCorrectLevels(t *testing.T) {
	f := testFlow(t)
	target := isoLineEnd()
	// L0 is identity.
	res, conv, err := f.Correct(target, L0)
	if err != nil {
		t.Fatal(err)
	}
	if conv != nil || len(res.Corrected) != 1 {
		t.Error("L0 should pass through")
	}
	// L1 changes geometry.
	res1, _, err := f.Correct(target, L1)
	if err != nil {
		t.Fatal(err)
	}
	if geom.RegionFromPolygons(res1.Corrected...).Xor(geom.RegionFromPolygons(target...)).Empty() {
		t.Error("L1 produced the identity")
	}
	// L2/L3 run the model engine; L3 must also place SRAFs for an
	// isolated line.
	res2, conv2, err := f.Correct(target, L2)
	if err != nil {
		t.Fatal(err)
	}
	if conv2 == nil || conv2.Iterations != 1 {
		t.Errorf("L2 iterations = %v", conv2)
	}
	if len(res2.SRAFs) != 0 {
		t.Error("L2 should not place SRAFs")
	}
	res3, conv3, err := f.Correct(target, L3)
	if err != nil {
		t.Fatal(err)
	}
	if conv3 == nil || conv3.Iterations < 2 {
		t.Errorf("L3 iterations = %+v", conv3)
	}
	if len(res3.SRAFs) == 0 {
		t.Error("L3 should place SRAFs on an isolated line")
	}
	// Empty target rejected.
	if _, _, err := f.Correct(nil, L2); err == nil {
		t.Error("empty target should fail")
	}
}

func TestAssessFidelityOrdering(t *testing.T) {
	f := testFlow(t)
	target := isoLineEnd()
	imps := map[Level]Impact{}
	for _, l := range Levels {
		imp, err := f.Assess(target, l)
		if err != nil {
			t.Fatalf("level %v: %v", l, err)
		}
		imps[l] = imp
	}
	// The headline result: correction reduces EPE, model beats rules,
	// L3 is at least as good as L2.
	if !(imps[L1].EPE.RMS < imps[L0].EPE.RMS) {
		t.Errorf("L1 RMS %.2f !< L0 RMS %.2f", imps[L1].EPE.RMS, imps[L0].EPE.RMS)
	}
	if !(imps[L3].EPE.RMS < imps[L0].EPE.RMS/2) {
		t.Errorf("L3 RMS %.2f should be < half of L0 %.2f", imps[L3].EPE.RMS, imps[L0].EPE.RMS)
	}
	if imps[L3].EPE.RMS > imps[L2].EPE.RMS+1 {
		t.Errorf("L3 RMS %.2f worse than L2 %.2f", imps[L3].EPE.RMS, imps[L2].EPE.RMS)
	}
	// The cost side: mask data grows with level.
	if !(imps[L3].Data.GDSBytes > imps[L0].Data.GDSBytes) {
		t.Error("L3 mask data should exceed L0")
	}
	if !(imps[L3].Data.Shots > imps[L0].Data.Shots) {
		t.Error("L3 shots should exceed L0")
	}
	// No mask rule violations at any level.
	for l, imp := range imps {
		if imp.MRCViolations != 0 {
			t.Errorf("level %v: %d MRC violations", l, imp.MRCViolations)
		}
	}
}

func TestCorrectWindowedMatchesUnwindowed(t *testing.T) {
	f := testFlow(t)
	// A small array spanning two tiles.
	var target []geom.Polygon
	for i := 0; i < 6; i++ {
		x := geom.Coord(i) * 600
		target = append(target, geom.R(x, 0, x+180, 2200).Polygon())
	}
	res, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tiles < 2 {
		t.Fatalf("tiles = %d, want >= 2", st.Tiles)
	}
	// Polygons crossing tile boundaries are cut, so the count can grow,
	// but never shrink.
	if len(res.Corrected) < len(target) {
		t.Errorf("corrected %d of %d polygons", len(res.Corrected), len(target))
	}
	if st.WorstRMS > 8 {
		t.Errorf("worst tile RMS = %.2f", st.WorstRMS)
	}
	// Tile boundaries must not lose or duplicate polygons: areas are
	// within MRC bias of the originals.
	orig := geom.RegionFromPolygons(target...)
	corr := geom.RegionFromPolygons(res.Corrected...)
	if corr.Empty() {
		t.Fatal("empty corrected region")
	}
	if !corr.Subtract(orig.Grow(f.MRC.MaxBias)).Empty() {
		t.Error("corrected output exceeds bias envelope")
	}
	// L0/L1 paths.
	res0, _, err := f.CorrectWindowed(target, L0, 2500, false)
	if err != nil || len(res0.Corrected) != len(target) {
		t.Errorf("L0 windowed: %v", err)
	}
	if _, _, err := f.CorrectWindowed(target, L2, 100, false); err == nil {
		t.Error("tile below ambit should fail")
	}
	if _, _, err := f.CorrectWindowed(nil, L2, 2500, false); err == nil {
		t.Error("empty target should fail")
	}
}

func TestCorrectWindowedParallelMatchesSerial(t *testing.T) {
	f := testFlow(t)
	var target []geom.Polygon
	for i := 0; i < 4; i++ {
		x := geom.Coord(i) * 700
		target = append(target, geom.R(x, 0, x+180, 1800).Polygon())
	}
	resS, _, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	resP, _, err := f.CorrectWindowed(target, L2, 2500, true)
	if err != nil {
		t.Fatal(err)
	}
	a := geom.RegionFromPolygons(resS.Corrected...)
	b := geom.RegionFromPolygons(resP.Corrected...)
	if !a.Xor(b).Empty() {
		t.Error("parallel tiling changed the result")
	}
}

func TestMinPitchForSpecImprovesWithLevel(t *testing.T) {
	f := testFlow(t)
	pitches := []geom.Coord{360, 430, 520, 640, 800}
	min0, res0, err := f.MinPitchForSpec(180, pitches, 0.10, L0)
	if err != nil {
		t.Fatal(err)
	}
	min3, res3, err := f.MinPitchForSpec(180, pitches, 0.10, L3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res0) != len(pitches) || len(res3) != len(pitches) {
		t.Fatal("result length mismatch")
	}
	// OPC must not lose ground, and should usually gain.
	if min3 == 0 {
		t.Fatal("L3 met spec nowhere")
	}
	if min0 != 0 && min3 > min0 {
		t.Errorf("L3 min pitch %d worse than L0 %d", min3, min0)
	}
	// Level 3 passes at least as many pitches.
	count := func(rs []PitchResult) int {
		n := 0
		for _, r := range rs {
			if r.InSpec {
				n++
			}
		}
		return n
	}
	if count(res3) < count(res0) {
		t.Errorf("L3 passes %d pitches, L0 passes %d", count(res3), count(res0))
	}
	// Validation.
	if _, _, err := f.MinPitchForSpec(0, pitches, 0.1, L0); err == nil {
		t.Error("zero cd should fail")
	}
	if _, _, err := f.MinPitchForSpec(180, []geom.Coord{100}, 0.1, L0); err == nil {
		t.Error("pitch < cd should fail")
	}
}

func TestAnalyzeHierarchyImpact(t *testing.T) {
	// Two masters: one placed in identical contexts (1 variant), one in
	// distinct contexts (2 variants).
	ly := layout.New("h")
	a := ly.MustCell("A")
	a.AddRect(layout.Poly, geom.R(0, 0, 180, 1000))
	b := ly.MustCell("B")
	b.AddRect(layout.Poly, geom.R(0, 0, 180, 1000))
	top := ly.MustCell("TOP")
	// Two A placements with the same empty neighborhood.
	top.PlaceAt(a, geom.Pt(0, 0))
	top.PlaceAt(a, geom.Pt(50000, 0))
	// Two B placements: one isolated, one next to extra geometry.
	top.PlaceAt(b, geom.Pt(100000, 0))
	top.PlaceAt(b, geom.Pt(150000, 0))
	top.AddRect(layout.Poly, geom.R(150400, 0, 150580, 1000))
	ly.SetTop(top)

	imp, err := AnalyzeHierarchyImpact(ly, layout.Poly, 800)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Masters != 2 {
		t.Fatalf("masters = %d", imp.Masters)
	}
	if imp.Placements != 4 {
		t.Errorf("placements = %d", imp.Placements)
	}
	if imp.VariantsPerMaster["A"] != 1 {
		t.Errorf("A variants = %d, want 1", imp.VariantsPerMaster["A"])
	}
	if imp.VariantsPerMaster["B"] != 2 {
		t.Errorf("B variants = %d, want 2", imp.VariantsPerMaster["B"])
	}
	if imp.TotalVariants != 3 {
		t.Errorf("total variants = %d", imp.TotalVariants)
	}
	if ef := imp.ExpansionFactor(); ef != 1.5 {
		t.Errorf("expansion = %f", ef)
	}
}

func TestAnalyzeHierarchyImpactDenseBlock(t *testing.T) {
	// A generated block: interior cells of the same master in the same
	// row context collapse to few variants; the ratio must stay well
	// below full flattening.
	ly := layout.New("blk")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	block, err := gen.BuildBlock(ly, lib, "B", 3, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	ly.SetTop(block)
	imp, err := AnalyzeHierarchyImpact(ly, layout.Poly, 700)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Placements != 24 {
		t.Errorf("placements = %d", imp.Placements)
	}
	if imp.TotalVariants <= imp.Masters {
		t.Error("random neighborhoods should force some variants")
	}
	if imp.TotalVariants > imp.Placements {
		t.Error("variants cannot exceed placements")
	}
}

func TestHierarchyImpactMirrorDistinct(t *testing.T) {
	// A mirrored placement with an asymmetric neighbor is a different
	// context than the unmirrored one.
	ly := layout.New("m")
	a := ly.MustCell("A")
	a.AddRect(layout.Poly, geom.R(0, 0, 180, 1000))
	top := ly.MustCell("TOP")
	top.PlaceAt(a, geom.Pt(0, 0))
	mx := geom.Xform{Orient: geom.MX, Mag: 1, Offset: geom.Pt(50000, 1000)}
	top.Place(a, mx)
	// Asymmetric neighbor above each placement.
	top.AddRect(layout.Poly, geom.R(0, 1400, 180, 1800))
	top.AddRect(layout.Poly, geom.R(50000, 1400, 50180, 1800))
	ly.SetTop(top)
	imp, err := AnalyzeHierarchyImpact(ly, layout.Poly, 800)
	if err != nil {
		t.Fatal(err)
	}
	// In master-local frames the neighbor sits above one and below the
	// other: two variants.
	if imp.VariantsPerMaster["A"] != 2 {
		t.Errorf("mirrored contexts should differ: %d variants", imp.VariantsPerMaster["A"])
	}
}

func TestBuildHotspotLibraryAndScreen(t *testing.T) {
	f := testFlow(t)
	// A target with a genuine bridge risk: a 60 nm drawn space between
	// wide lines, uncorrected.
	bad := []geom.Polygon{
		geom.R(-460, -2000, -30, 2000).Polygon(),
		geom.R(30, -2000, 460, 2000).Polygon(),
	}
	hl, err := f.BuildHotspotLibrary(bad, L0, 600)
	if err != nil {
		t.Fatal(err)
	}
	if hl.Lib.Len() == 0 {
		t.Fatal("no hotspot patterns captured")
	}
	// The same configuration placed elsewhere in a new design is found
	// with zero simulation.
	var newDesign []geom.Polygon
	for _, p := range bad {
		newDesign = append(newDesign, p.Translate(geom.Pt(50000, 30000)))
	}
	newDesign = append(newDesign, geom.R(0, 0, 180, 4000).Polygon()) // innocuous
	matches := hl.Screen(newDesign)
	if len(matches) == 0 {
		t.Error("known hotspot configuration not found in new design")
	}
	for _, m := range matches {
		if m.At.X < 40000 {
			t.Errorf("match anchored on innocuous geometry: %v", m)
		}
	}
}

func TestCorrectCellsHierarchical(t *testing.T) {
	f := testFlow(t)
	ly := layout.New("hc")
	bit := ly.MustCell("BIT")
	bit.AddRect(layout.Poly, geom.R(0, 0, 180, 2000))
	bit.AddRect(layout.Poly, geom.R(500, 0, 680, 2000))
	top := ly.MustCell("TOP")
	top.PlaceArray(bit, geom.Identity(), 16, 4, geom.Pt(1500, 0), geom.Pt(0, 3000))
	ly.SetTop(top)

	rep, err := f.CorrectCells(ly, layout.Poly, L2)
	if err != nil {
		t.Fatal(err)
	}
	// One master corrected (top has no poly of its own).
	if len(rep.Cells) != 1 || rep.Cells[0].Cell != "BIT" {
		t.Fatalf("report: %+v", rep)
	}
	if rep.SharedMasters != 1 {
		t.Errorf("shared masters = %d", rep.SharedMasters)
	}
	// The OPC layer now exists on the master and flattens to 64 copies.
	out := layout.OPCLayer(layout.Poly)
	if len(bit.Shapes[out]) == 0 {
		t.Fatal("no OPC output on master")
	}
	flat := layout.Flatten(top, out)
	if len(flat) != 64*len(bit.Shapes[out]) {
		t.Errorf("flattened OPC figures = %d", len(flat))
	}
	cmp, err := CompareOPCData(ly, layout.Poly)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.StoredFigures != len(bit.Shapes[out]) {
		t.Errorf("stored = %d", cmp.StoredFigures)
	}
	if cmp.ExpandedFigures != int64(64*len(bit.Shapes[out])) {
		t.Errorf("expanded = %d", cmp.ExpandedFigures)
	}
}

func TestCorrectCellsNoTop(t *testing.T) {
	f := testFlow(t)
	ly := layout.New("x")
	if _, err := f.CorrectCells(ly, layout.Poly, L1); err == nil {
		t.Error("no top should fail")
	}
	if _, err := CompareOPCData(ly, layout.Poly); err == nil {
		t.Error("no top should fail")
	}
}

func TestFlowRetargeting(t *testing.T) {
	f := testFlow(t)
	// Work on a copy so the shared flow is unchanged.
	f2 := *f
	f2.RetargetMinCD = 180
	// A 120-wide line: unprintable as drawn, retargeted to 180 first.
	target := []geom.Polygon{geom.R(-60, -2000, 60, 2000).Polygon()}
	res, _, err := f2.Correct(target, L2)
	if err != nil {
		t.Fatal(err)
	}
	bb := geom.RegionFromPolygons(res.Corrected...).BBox()
	if bb.W() < 180 {
		t.Errorf("retargeted+corrected width = %d, want >= 180", bb.W())
	}
	// L0 passes the drawn data through untouched (the mask *is* the
	// design at level 0).
	res0, _, err := f2.Correct(target, L0)
	if err != nil {
		t.Fatal(err)
	}
	if geom.RegionFromPolygons(res0.Corrected...).BBox().W() != 120 {
		t.Error("L0 must not retarget")
	}
}
