package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/obs/trace"
)

// TestTraceReconcilesWithTileStats runs a parallel two-pass correction
// with the flight recorder attached — exercising concurrent emit from
// the worker fan-out under `make verify`'s -race — and checks the
// recorded timeline accounts for exactly the outcomes TileStats
// reports, including dedup, clean skips and checkpoint writes.
func TestTraceReconcilesWithTileStats(t *testing.T) {
	f := *testFlow(t)
	rec := trace.New(0)
	f.Tracer = rec
	f.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")

	ly := layout.New("trace")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		t.Fatal(err)
	}
	block, err := gen.BuildBlock(ly, lib, "B", 1, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	target := layout.Flatten(block, layout.Poly)

	_, st, err := f.CorrectWindowed(target, L3, 4*f.Ambit, true)
	if err != nil {
		t.Fatal(err)
	}
	sum := rec.Summary()
	if sum.Drops != 0 {
		t.Fatalf("trace dropped %d events on a small run", sum.Drops)
	}
	if err := ReconcileTrace(sum, st.ExpectedTraceCounts()); err != nil {
		t.Fatal(err)
	}
	if sum.Tiles.Scheduled != st.Tiles*st.Passes || st.Tiles == 0 {
		t.Fatalf("scheduled events %d, stats %d tiles x %d passes", sum.Tiles.Scheduled, st.Tiles, st.Passes)
	}
	if sum.Tiles.Checkpoints == 0 {
		t.Fatalf("no checkpoint events despite CheckpointPath (final flush must emit)")
	}
	// A mutilated expectation must be caught field-by-field.
	want := st.ExpectedTraceCounts()
	want.Solved++
	if err := ReconcileTrace(sum, want); err == nil {
		t.Fatal("reconcile accepted a wrong solved count")
	}
	// Drops poison reconciliation outright.
	poisoned := sum
	poisoned.Drops = 1
	if err := ReconcileTrace(poisoned, st.ExpectedTraceCounts()); err == nil {
		t.Fatal("reconcile accepted a lossy trace")
	}
}

// TestTraceDisabledIsInert checks a nil Flow.Tracer changes nothing:
// the run completes identically with no recorder allocated anywhere.
func TestTraceDisabledIsInert(t *testing.T) {
	f := *testFlow(t)
	f.Tracer = nil
	target, _ := twoIsolatedClusters()
	_, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.CorrectedTiles != 1 {
		t.Fatalf("corrected tiles = %d", st.CorrectedTiles)
	}
}

// TestTraceGoldenDeterministicExport replays a seeded single-worker run
// with a deterministic clock and requires the Chrome trace-event export
// to match the committed golden byte for byte: the merge order, the
// event payloads (iterations, RMS) and the JSON encoding are all under
// test. Regenerate with GOOPC_UPDATE_GOLDEN=1 after intentional schema
// changes.
func TestTraceGoldenDeterministicExport(t *testing.T) {
	golden := filepath.Join("testdata", "trace_golden.json")
	f := *testFlow(t)
	rec := trace.New(1 << 10)
	var tick time.Duration
	rec.SetClock(func() time.Duration { tick += time.Microsecond; return tick })
	f.Tracer = rec

	target, _ := twoIsolatedClusters()
	// Serial run: one coordinator ring, one worker ring, fully
	// deterministic emit order.
	_, st, err := f.CorrectWindowed(target, L3, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReconcileTrace(rec.Summary(), st.ExpectedTraceCounts()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf, trace.ChromeOptions{PID: 1, ProcessName: "goopc-test"}); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("GOOPC_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with GOOPC_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace export differs from golden %s\n got: %s\nwant: %s", golden, buf.Bytes(), want)
	}

	// The export itself is pure: re-exporting the same recorder must be
	// byte-identical.
	var again bytes.Buffer
	if err := rec.WriteChrome(&again, trace.ChromeOptions{PID: 1, ProcessName: "goopc-test"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-export of an identical timeline differs")
	}
}

// TestTraceRetryAndDegradeEvents arms fault injection so one tile
// exhausts its retries and degrades, then checks the recorder saw the
// retries and the degradation and still reconciles.
func TestTraceRetryAndDegradeEvents(t *testing.T) {
	f := *testFlow(t)
	rec := trace.New(0)
	f.Tracer = rec
	f.TileRetries = 1
	f.RetryBackoff = time.Millisecond
	// Every model attempt faults; the ladder lands on the rules rung.
	f.FaultPlan = mustPlan(t, "seed=1;tile:error:n=1000")
	target := []geom.Polygon{geom.R(200, 200, 380, 1700).Polygon()}
	_, st, err := f.CorrectWindowed(target, L2, 2500, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedRules+st.DegradedUncorrected == 0 || st.Retries == 0 {
		t.Fatalf("fault plan did not degrade: %+v", st)
	}
	sum := rec.Summary()
	if err := ReconcileTrace(sum, st.ExpectedTraceCounts()); err != nil {
		t.Fatal(err)
	}
	if sum.Tiles.Retries != st.Retries || sum.Tiles.Degraded == 0 {
		t.Fatalf("trace retries/degraded = %d/%d, stats %d/%d",
			sum.Tiles.Retries, sum.Tiles.Degraded, st.Retries, st.DegradedRules+st.DegradedUncorrected)
	}
	for _, e := range rec.Events() {
		if e.Kind == trace.TileDegrade && e.Detail == "" {
			t.Fatal("degrade event lost its mode/error detail")
		}
	}
}
