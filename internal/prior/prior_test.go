package prior

import (
	"path/filepath"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/patmatch"
)

// sig captures the signature of the first matching fragment of a line
// in the given environment.
func lineSig(t *testing.T, env []geom.Polygon, radius geom.Coord) patmatch.FragSig {
	t.Helper()
	frags := geom.FragmentPolygon(env[0], 0, geom.DefaultFragmentSpec())
	for _, f := range frags {
		if f.Kind == geom.RunFragment {
			return patmatch.CaptureFragment(f, env, radius)
		}
	}
	t.Fatal("no run fragment")
	return patmatch.FragSig{}
}

func TestTableFitPredictRoundtrip(t *testing.T) {
	line := geom.Polygon{geom.Pt(0, 0), geom.Pt(180, 0), geom.Pt(180, 2000), geom.Pt(0, 2000)}
	sig := lineSig(t, []geom.Polygon{line}, 600)

	tab := New(600, "L3")
	tab.Add(sig, 12)
	tab.Add(sig, 13) // within DefaultConflictSpread
	b, ok := tab.Bias(sig)
	if !ok {
		t.Fatal("no prediction for fitted signature")
	}
	if b != 13 && b != 12 { // rounded mean of 12.5
		t.Fatalf("bias %d, want ~12-13", b)
	}

	// Save/Load roundtrip preserves prediction and fingerprint.
	path := filepath.Join(t.TempDir(), "prior.json")
	tab.MeanIters = 4.5
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != tab.Fingerprint() {
		t.Fatalf("fingerprint changed across save/load: %s != %s", got.Fingerprint(), tab.Fingerprint())
	}
	b2, ok := got.Bias(sig)
	if !ok || b2 != b {
		t.Fatalf("loaded table predicts (%d,%v), want (%d,true)", b2, ok, b)
	}
	// math.Round(4.5) == 5 (half away from zero), so a 2-iteration
	// warmed run is estimated to have saved 3.
	if got.SavedIters(2) != 3 {
		t.Fatalf("SavedIters(2) = %d, want 3", got.SavedIters(2))
	}
	if got.SavedIters(9) != 0 {
		t.Fatalf("SavedIters(9) = %d, want 0 (floored)", got.SavedIters(9))
	}
}

// TestTableConflictingObservations: a pattern observed with genuinely
// different converged biases must stop predicting.
func TestTableConflictingObservations(t *testing.T) {
	line := geom.Polygon{geom.Pt(0, 0), geom.Pt(180, 0), geom.Pt(180, 2000), geom.Pt(0, 2000)}
	sig := lineSig(t, []geom.Polygon{line}, 600)
	tab := New(600, "L3")
	tab.Add(sig, 5)
	tab.Add(sig, 25) // spread 20 > DefaultConflictSpread
	if _, ok := tab.Bias(sig); ok {
		t.Fatal("conflicted entry still predicts")
	}
	if tab.Conflicts() != 1 {
		t.Fatalf("Conflicts() = %d, want 1", tab.Conflicts())
	}
}

// TestTableCollisionNoPrediction is the satellite acceptance case: two
// distinct geometries with equal keys must degrade to "no prediction",
// never a wrong bias. The collision is forged by rewriting a fitted
// entry's rects to different geometry while keeping its key.
func TestTableCollisionNoPrediction(t *testing.T) {
	line := geom.Polygon{geom.Pt(0, 0), geom.Pt(180, 0), geom.Pt(180, 2000), geom.Pt(0, 2000)}
	sig := lineSig(t, []geom.Polygon{line}, 600)
	tab := New(600, "L3")
	tab.Add(sig, 12)
	for _, e := range tab.Entries {
		// Same key (map key unchanged), different exact geometry: the
		// situation a 64-bit hash collision would produce.
		e.Rects = append([]geom.Rect{}, e.Rects...)
		e.Rects[0].X1 += 40
	}
	if b, ok := tab.Bias(sig); ok {
		t.Fatalf("collision predicted bias %d; must refuse", b)
	}
}

// TestTableAddCollisionPoisons: Add detecting two distinct geometries
// on one key marks the entry conflicted.
func TestTableAddCollisionPoisons(t *testing.T) {
	line := geom.Polygon{geom.Pt(0, 0), geom.Pt(180, 0), geom.Pt(180, 2000), geom.Pt(0, 2000)}
	sig := lineSig(t, []geom.Polygon{line}, 600)
	tab := New(600, "L3")
	tab.Add(sig, 12)
	other := sig
	other.Rects = append([]geom.Rect{}, sig.Rects...)
	other.Rects[0].X0 -= 20 // distinct geometry, forged same key
	tab.Add(other, 40)
	if _, ok := tab.Bias(sig); ok {
		t.Fatal("entry poisoned by collision still predicts")
	}
}

func TestInitialBiasHook(t *testing.T) {
	line := geom.Polygon{geom.Pt(0, 0), geom.Pt(180, 0), geom.Pt(180, 2000), geom.Pt(0, 2000)}
	env := []geom.Polygon{line}
	tab := New(600, "L3")
	frags := geom.FragmentPolygon(line, 0, geom.DefaultFragmentSpec())
	for _, f := range frags {
		tab.Add(patmatch.CaptureFragment(f, env, 600), geom.Coord(7))
	}
	hook := tab.InitialBias(env)
	hits := 0
	for _, f := range frags {
		if b, ok := hook(f); ok {
			if b != 7 {
				t.Fatalf("predicted %d, want 7", b)
			}
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("hook predicted nothing for the fitted layout")
	}
	var nilTab *Table
	if nilTab.InitialBias(env) != nil {
		t.Fatal("nil table must yield nil hook")
	}
}
