// Package prior implements the learned initial-bias prior for model
// OPC (DESIGN.md 5j): a lookup table over D4-canonical fragment
// signatures (internal/patmatch) fitted from a corrected dataset
// (internal/dataset), predicting each fragment's converged bias before
// the first model iteration. DAMO-style — the expensive iterative loop
// runs once per distinct pattern during dataset generation, then every
// later run of a known pattern starts at the answer and converges in
// fewer iterations. Stdlib-only by design: the table is exact matching
// with mean aggregation, not gradient anything, which keeps prediction
// deterministic, auditable, and collision-safe.
//
// Safety contract: a prediction is returned only when the stored
// entry's exact canonical rects match the queried fragment's. Distinct
// geometries that collide on the 64-bit key — or that legitimately
// share a key because they were fitted from conflicting observations —
// degrade to "no prediction" (the engine cold-starts that fragment),
// never to a wrong bias.
package prior

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"goopc/internal/geom"
	"goopc/internal/patmatch"
)

// tableVersion guards the artifact format.
const tableVersion = 1

// Entry is one fitted pattern: the exact canonical signature geometry
// (the collision backstop) plus the accumulated bias observations.
type Entry struct {
	Kind  uint8       `json:"kind"`
	Len   geom.Coord  `json:"len"`
	Rects []geom.Rect `json:"rects"`
	// N observations accumulated SumBias; the prediction is the rounded
	// mean. BiasMin/BiasMax record the observed spread — entries whose
	// observations disagree beyond ConflictSpread are marked Conflict
	// and never predict.
	N       int        `json:"n"`
	SumBias int64      `json:"sum_bias"`
	BiasMin geom.Coord `json:"bias_min"`
	BiasMax geom.Coord `json:"bias_max"`
	// Conflict marks an entry that must not predict: either two
	// distinct geometries collided on its key, or its observations
	// disagree beyond the spread tolerance.
	Conflict bool `json:"conflict,omitempty"`
}

// Bias returns the entry's prediction (rounded mean of observations).
func (e *Entry) Bias() geom.Coord {
	if e.N == 0 {
		return 0
	}
	return geom.Coord(math.Round(float64(e.SumBias) / float64(e.N)))
}

// Table is the serialized prior: fitted entries keyed by the fragment
// signature's 64-bit key (hex), plus the capture parameters a
// prediction-time signature must reproduce.
type Table struct {
	Version int `json:"version"`
	// Radius is the signature capture radius (DBU); Level the adoption
	// level the corpus was corrected at. Both must match at prediction
	// time — a table fitted at L3 has nothing to say about an L2 run.
	Radius geom.Coord `json:"radius"`
	Level  string     `json:"level"`
	// ConflictSpread is the widest |max-min| observation disagreement
	// (DBU) an entry may carry and still predict.
	ConflictSpread geom.Coord `json:"conflict_spread"`
	// MeanIters is the mean model-iteration count per engine run in the
	// fitted (cold) corpus — the baseline SavedIters estimates against.
	MeanIters float64 `json:"mean_iters"`
	// Samples and Runs describe the fitted corpus.
	Samples int `json:"samples"`
	Runs    int `json:"runs"`
	// Entries maps %016x signature keys to fitted entries.
	Entries map[string]*Entry `json:"entries"`

	// fingerprint is the content hash, computed at Save/Load.
	fingerprint string
}

// DefaultConflictSpread tolerates the measurement noise between
// D4-duplicate placements of the same pattern: geometrically identical
// fragments at different positions (or orientations) sample the aerial
// image at different pixel-grid phases and converge to biases a few
// mask-grid steps apart, for which the mean is the right estimator.
// Genuinely ambiguous signatures — environments that differ beyond the
// capture radius in ways that matter optically — disagree far more
// widely and are rejected. This calibration assumes a capture radius of
// at least the optical ambit (~2λ/NA); fit at smaller radii with a
// tighter spread.
const DefaultConflictSpread geom.Coord = 16

// New returns an empty table for the capture radius and level.
func New(radius geom.Coord, level string) *Table {
	return &Table{
		Version:        tableVersion,
		Radius:         radius,
		Level:          level,
		ConflictSpread: DefaultConflictSpread,
		Entries:        map[string]*Entry{},
	}
}

// keyString formats a signature key for the entries map.
func keyString(key uint64) string { return fmt.Sprintf("%016x", key) }

// Add accumulates one observed (signature, converged bias) pair. A key
// collision between distinct geometries poisons the entry (Conflict):
// it will never predict, for either geometry.
func (t *Table) Add(sig patmatch.FragSig, bias geom.Coord) {
	if sig.Empty() {
		return
	}
	k := keyString(sig.Key())
	e := t.Entries[k]
	if e == nil {
		t.Entries[k] = &Entry{
			Kind: sig.Kind, Len: sig.Len, Rects: sig.Rects,
			N: 1, SumBias: int64(bias), BiasMin: bias, BiasMax: bias,
		}
		return
	}
	if !sig.SameGeometry(t.entrySig(e)) {
		e.Conflict = true
		return
	}
	e.N++
	e.SumBias += int64(bias)
	if bias < e.BiasMin {
		e.BiasMin = bias
	}
	if bias > e.BiasMax {
		e.BiasMax = bias
	}
	if e.BiasMax-e.BiasMin > t.conflictSpread() {
		e.Conflict = true
	}
}

func (t *Table) conflictSpread() geom.Coord {
	if t.ConflictSpread <= 0 {
		return DefaultConflictSpread
	}
	return t.ConflictSpread
}

// entrySig reconstructs the comparable signature of a stored entry.
func (t *Table) entrySig(e *Entry) patmatch.FragSig {
	return patmatch.FragSig{Kind: e.Kind, Len: e.Len, Radius: t.Radius, Rects: e.Rects}
}

// Bias predicts the initial bias for a captured signature. The miss
// paths: unknown key, conflicted entry, or a key hit whose exact rects
// differ (hash collision) — all return ok=false.
func (t *Table) Bias(sig patmatch.FragSig) (geom.Coord, bool) {
	if t == nil || sig.Empty() {
		return 0, false
	}
	mLookups.Inc()
	e, ok := t.Entries[keyString(sig.Key())]
	if !ok {
		mMisses.Inc()
		return 0, false
	}
	if e.Conflict {
		mConflicts.Inc()
		return 0, false
	}
	if !sig.SameGeometry(t.entrySig(e)) {
		// 64-bit collision between distinct geometries: refuse.
		mConflicts.Inc()
		return 0, false
	}
	mHits.Inc()
	return e.Bias(), true
}

// InitialBias adapts the table to the model engine's warm-start hook
// for one correction run: env is the drawn geometry the signatures are
// captured against (the run's target plus any halo context — the same
// geometry family the table was fitted over).
func (t *Table) InitialBias(env []geom.Polygon) func(geom.Fragment) (geom.Coord, bool) {
	if t == nil {
		return nil
	}
	return func(f geom.Fragment) (geom.Coord, bool) {
		return t.Bias(patmatch.CaptureFragment(f, env, t.Radius))
	}
}

// SavedIters estimates the iterations a warmed run saved: the fitted
// corpus's mean cold iteration count minus the run's actual count,
// floored at zero. An un-fitted table (MeanIters 0) estimates nothing.
func (t *Table) SavedIters(iters int) int {
	if t == nil || t.MeanIters <= 0 {
		return 0
	}
	s := int(math.Round(t.MeanIters)) - iters
	if s < 0 {
		s = 0
	}
	return s
}

// ObserveWarmRun folds one warmed engine run into the prior metrics and
// returns the saved-iteration estimate.
func (t *Table) ObserveWarmRun(iters int) int {
	saved := t.SavedIters(iters)
	if saved > 0 {
		mSavedIters.Add(int64(saved))
	}
	return saved
}

// Len returns the number of fitted entries; Conflicts the subset
// blocked from predicting.
func (t *Table) Len() int { return len(t.Entries) }

// Conflicts counts entries marked conflicted.
func (t *Table) Conflicts() int {
	n := 0
	for _, e := range t.Entries {
		if e.Conflict {
			n++
		}
	}
	return n
}

// Fingerprint is the content hash of the serialized table — what the
// core run fingerprint folds in when a prior is active, so a checkpoint
// warmed by one table never resumes a run warmed by another.
func (t *Table) Fingerprint() string {
	if t == nil {
		return ""
	}
	if t.fingerprint == "" {
		data, err := t.marshal()
		if err != nil {
			return "unserializable"
		}
		t.fingerprint = contentHash(data)
	}
	return t.fingerprint
}

func contentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// marshal serializes deterministically (encoding/json sorts map keys).
func (t *Table) marshal() ([]byte, error) {
	data, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("prior: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the table atomically (temp file + rename) and refreshes
// the fingerprint.
func (t *Table) Save(path string) error {
	data, err := t.marshal()
	if err != nil {
		return err
	}
	t.fingerprint = contentHash(data)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".prior-*")
	if err != nil {
		return fmt.Errorf("prior: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("prior: write %s: %w", path, werr)
	}
	return nil
}

// Load reads a table written by Save and records its fingerprint.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("prior: %w", err)
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("prior: %s: %w", path, err)
	}
	if t.Version != tableVersion {
		return nil, fmt.Errorf("prior: %s: version %d, want %d", path, t.Version, tableVersion)
	}
	if t.Entries == nil {
		t.Entries = map[string]*Entry{}
	}
	t.fingerprint = contentHash(data)
	mEntries.Set(float64(len(t.Entries)))
	return &t, nil
}

// Stats is the fitted-table summary datasetgen prints.
type Stats struct {
	Entries   int     `json:"entries"`
	Conflicts int     `json:"conflicts"`
	Samples   int     `json:"samples"`
	Runs      int     `json:"runs"`
	MeanIters float64 `json:"mean_iters"`
	// MeanObs is the mean observation count per predicting entry.
	MeanObs float64 `json:"mean_obs"`
}

// Summary computes the table's stats.
func (t *Table) Summary() Stats {
	s := Stats{Entries: len(t.Entries), Samples: t.Samples, Runs: t.Runs, MeanIters: t.MeanIters}
	obsSum, predicting := 0, 0
	for _, e := range t.Entries {
		if e.Conflict {
			s.Conflicts++
			continue
		}
		predicting++
		obsSum += e.N
	}
	if predicting > 0 {
		s.MeanObs = float64(obsSum) / float64(predicting)
	}
	return s
}

// SortedKeys returns the entry keys in deterministic order (for
// printing and tests).
func (t *Table) SortedKeys() []string {
	keys := make([]string, 0, len(t.Entries))
	for k := range t.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
