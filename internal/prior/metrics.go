package prior

import "goopc/internal/obs"

// Registry series for the learned prior: lookup outcomes (every miss
// or conflict cold-starts one fragment), the loaded table size, and
// the estimated iteration savings the warm starts bought.
var (
	mLookups = obs.Default().Counter("goopc_prior_lookups_total",
		"prior table lookups (one per non-frozen fragment in warmed runs)")
	mHits = obs.Default().Counter("goopc_prior_hits_total",
		"prior lookups that predicted an initial bias")
	mMisses = obs.Default().Counter("goopc_prior_misses_total",
		"prior lookups with no fitted entry for the signature")
	mConflicts = obs.Default().Counter("goopc_prior_conflicts_total",
		"prior lookups refused: conflicted entry or exact-rects mismatch on a key hit")
	mSavedIters = obs.Default().Counter("goopc_prior_saved_iterations_total",
		"estimated model iterations saved by warm starts (corpus mean minus actual)")
	mEntries = obs.Default().Gauge("goopc_prior_entries",
		"entries in the most recently loaded prior table")
)
