// Package render draws layout geometry and printed contours as SVG:
// the debug and documentation surface of the flow. Drawn layers render
// as filled polygons, corrected masks as outlines, assist features
// hatched, and resist contours as smooth polylines — the standard
// "target vs mask vs wafer" picture in every OPC paper.
package render

import (
	"fmt"
	"io"

	"goopc/internal/geom"
	"goopc/internal/resist"
)

// Style is the presentation of one rendered layer.
type Style struct {
	// Fill is a CSS color ("" disables fill).
	Fill string
	// Stroke is the outline color ("" disables).
	Stroke string
	// Opacity in [0,1] (0 treated as 1).
	Opacity float64
	// StrokeWidth in user units (nm); 0 picks a size-relative default.
	StrokeWidth float64
	// Dashed draws a dashed outline.
	Dashed bool
}

// LayerArt is one geometry group to draw.
type LayerArt struct {
	Name  string
	Polys []geom.Polygon
	Style Style
}

// ContourArt is one set of printed contours to draw.
type ContourArt struct {
	Name     string
	Contours []resist.Contour
	Style    Style
}

// Scene is the full drawing.
type Scene struct {
	Window   geom.Rect
	Layers   []LayerArt
	Contours []ContourArt
}

// Palette provides the default layer colors used by the tools.
var Palette = []string{"#4878cf", "#e24a33", "#6acc65", "#d65f5f", "#956cb4", "#c4ad66"}

// WriteSVG renders the scene. The SVG coordinate system is flipped so
// +y points up, as in layout viewers.
func (s Scene) WriteSVG(w io.Writer) error {
	if s.Window.Empty() {
		return fmt.Errorf("render: empty window")
	}
	width := s.Window.W()
	height := s.Window.H()
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="800" height="%d">`+"\n",
		width, height, int64(800)*int64(height)/int64(width)); err != nil {
		return err
	}
	// Flip y: svg y = window.Y1 - layout y.
	fmt.Fprintf(w, `<g transform="translate(%d,%d) scale(1,-1)">`+"\n", -s.Window.X0, s.Window.Y1)
	fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="white"/>`+"\n",
		s.Window.X0, s.Window.Y0, width, height)

	defWidth := float64(width) / 400
	for _, l := range s.Layers {
		fmt.Fprintf(w, `<g id=%q>`+"\n", "layer-"+l.Name)
		for _, p := range l.Polys {
			if !p.BBox().Touches(s.Window) {
				continue
			}
			fmt.Fprint(w, `<polygon points="`)
			for i, v := range p {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprintf(w, "%d,%d", v.X, v.Y)
			}
			fmt.Fprintf(w, `" %s/>`+"\n", l.Style.attrs(defWidth))
		}
		fmt.Fprintln(w, "</g>")
	}
	for _, c := range s.Contours {
		fmt.Fprintf(w, `<g id=%q>`+"\n", "contour-"+c.Name)
		for _, loop := range c.Contours {
			if len(loop) < 2 {
				continue
			}
			fmt.Fprint(w, `<polygon points="`)
			for i, v := range loop {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprintf(w, "%.1f,%.1f", v.X, v.Y)
			}
			st := c.Style
			if st.Fill == "" {
				st.Fill = "none"
			}
			fmt.Fprintf(w, `" %s/>`+"\n", st.attrs(defWidth))
		}
		fmt.Fprintln(w, "</g>")
	}
	fmt.Fprintln(w, "</g>")
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}

func (st Style) attrs(defWidth float64) string {
	fill := st.Fill
	if fill == "" {
		fill = "none"
	}
	opacity := st.Opacity
	if opacity == 0 {
		opacity = 1
	}
	sw := st.StrokeWidth
	if sw == 0 {
		sw = defWidth
	}
	out := fmt.Sprintf(`fill=%q fill-opacity="%.2f"`, fill, opacity)
	if st.Stroke != "" {
		out += fmt.Sprintf(` stroke=%q stroke-width="%.1f"`, st.Stroke, sw)
		if st.Dashed {
			out += fmt.Sprintf(` stroke-dasharray="%.1f %.1f"`, 4*sw, 2*sw)
		}
	}
	return out
}

// TargetMaskWafer builds the canonical OPC picture: drawn target
// (filled), corrected mask (dashed outline), assists (light fill), and
// the printed contour (solid line).
func TargetMaskWafer(window geom.Rect, target, mask, srafs []geom.Polygon, contours []resist.Contour) Scene {
	return Scene{
		Window: window,
		Layers: []LayerArt{
			{Name: "target", Polys: target, Style: Style{Fill: "#b8c8e8", Opacity: 0.8}},
			{Name: "mask", Polys: mask, Style: Style{Stroke: "#e24a33", Dashed: true}},
			{Name: "sraf", Polys: srafs, Style: Style{Fill: "#f0d080", Opacity: 0.9}},
		},
		Contours: []ContourArt{
			{Name: "wafer", Contours: contours, Style: Style{Stroke: "#2a7a2a"}},
		},
	}
}
