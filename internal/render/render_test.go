package render

import (
	"bytes"
	"strings"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/resist"
)

func TestWriteSVGBasics(t *testing.T) {
	scene := Scene{
		Window: geom.R(0, 0, 1000, 500),
		Layers: []LayerArt{{
			Name:  "poly",
			Polys: []geom.Polygon{geom.R(100, 100, 300, 400).Polygon()},
			Style: Style{Fill: "#4878cf"},
		}},
		Contours: []ContourArt{{
			Name: "wafer",
			Contours: []resist.Contour{{
				{X: 90, Y: 90}, {X: 310, Y: 90}, {X: 310, Y: 410}, {X: 90, Y: 410},
			}},
			Style: Style{Stroke: "#2a7a2a"},
		}},
	}
	var buf bytes.Buffer
	if err := scene.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", `id="layer-poly"`, `id="contour-wafer"`,
		"polygon", "#4878cf", "#2a7a2a", `scale(1,-1)`,
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Valid-ish structure: balanced groups.
	if strings.Count(svg, "<g") != strings.Count(svg, "</g>") {
		t.Error("unbalanced groups")
	}
}

func TestWriteSVGEmptyWindow(t *testing.T) {
	var buf bytes.Buffer
	if err := (Scene{}).WriteSVG(&buf); err == nil {
		t.Error("empty window should fail")
	}
}

func TestWriteSVGClipsOutside(t *testing.T) {
	scene := Scene{
		Window: geom.R(0, 0, 100, 100),
		Layers: []LayerArt{{
			Name: "far",
			Polys: []geom.Polygon{
				geom.R(5000, 5000, 6000, 6000).Polygon(), // outside: skipped
				geom.R(10, 10, 50, 50).Polygon(),
			},
			Style: Style{Fill: "red"},
		}},
	}
	var buf bytes.Buffer
	if err := scene.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "5000,5000") {
		t.Error("out-of-window polygon was drawn")
	}
	if !strings.Contains(buf.String(), "10,10") {
		t.Error("in-window polygon missing")
	}
}

func TestStyleAttrs(t *testing.T) {
	s := Style{Fill: "blue", Stroke: "black", Dashed: true, StrokeWidth: 2}
	a := s.attrs(1)
	for _, want := range []string{`fill="blue"`, `stroke="black"`, "stroke-dasharray"} {
		if !strings.Contains(a, want) {
			t.Errorf("attrs missing %q in %q", want, a)
		}
	}
	// Defaults.
	d := Style{}.attrs(3)
	if !strings.Contains(d, `fill="none"`) || !strings.Contains(d, `fill-opacity="1.00"`) {
		t.Errorf("default attrs = %q", d)
	}
}

func TestTargetMaskWafer(t *testing.T) {
	scene := TargetMaskWafer(
		geom.R(0, 0, 1000, 1000),
		[]geom.Polygon{geom.R(100, 100, 300, 900).Polygon()},
		[]geom.Polygon{geom.R(90, 90, 310, 910).Polygon()},
		[]geom.Polygon{geom.R(500, 100, 560, 900).Polygon()},
		[]resist.Contour{{{X: 95, Y: 95}, {X: 305, Y: 95}, {X: 305, Y: 905}}},
	)
	if len(scene.Layers) != 3 || len(scene.Contours) != 1 {
		t.Fatalf("scene shape: %d layers %d contours", len(scene.Layers), len(scene.Contours))
	}
	var buf bytes.Buffer
	if err := scene.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"layer-target", "layer-mask", "layer-sraf", "contour-wafer"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("missing group %q", id)
		}
	}
}
